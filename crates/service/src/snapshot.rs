//! Crash-safe snapshot / verified-restore of the warm-artifact store.
//!
//! A [`JuryService`](crate::JuryService) rebuilt from a process restart
//! pays the full cold-build cost — `O(N log N)` sorts, `O(N·L)` pmf
//! ladders and bound-pruned AltrM solves — per distinct pool content.
//! This module persists the content-addressed store itself: one binary
//! file per interned [`ArtifactSet`], keyed exactly like the in-memory
//! entry by `(fingerprint, layout, solver-config bits)`, plus a JSON
//! manifest naming them. A restarted service pointed at the directory
//! re-attaches pools to snapshot entries **by content** at registration
//! time and answers its first queries warm.
//!
//! ## Crash safety
//!
//! Every file (entries first, manifest last) is written to a temp name,
//! `fsync`ed, then atomically renamed; the directory is fsynced after
//! each rename. A crash mid-snapshot therefore leaves either the old
//! manifest (pointing at the old, still-intact entry files — entry
//! names are content-keyed, and rewrites of the *same* key are
//! atomic-replace) or the new manifest over fully-written new files.
//! There is no window in which a reader can observe a half-written
//! snapshot through the manifest.
//!
//! ## Trust model: verify everything, degrade to rebuild
//!
//! Snapshot bytes are *untrusted input*, exactly like wire data. The
//! manifest is only a catalog; every claim it makes is re-verified
//! against file contents, and every file section carries its own
//! checksum. Beyond integrity, restore re-establishes **semantic**
//! bindings against the live registering pool:
//!
//! * the embedded key must equal the requested key, and the decoded
//!   founding sequence must admit the registering pool via
//!   [`ArtifactSet::match_pool`] (content comparison, never hash trust);
//! * orders must be permutations; sorted ε values must be
//!   non-decreasing and bit-equal to the sequence through the ε order;
//! * every pmf checkpoint must re-hash to its stored
//!   [`PoiBin::content_hash`] and pass distribution validation;
//! * selections (AltrM answer, staircase replays) must have strictly
//!   ascending, in-range members; shard layers must be exact
//!   partitions with per-shard runs bound to the sequence.
//!
//! Any failure rejects the *candidate* — counted in
//! [`ServiceStats::snapshot_rejections`](crate::ServiceStats) — and the
//! pool falls back to the ordinary cold build. Corruption can cost the
//! warm start, never a wrong answer. (Like any trusted-storage cache,
//! the checksums guard against crashes and bit rot, not an adversary
//! who can forge internally-consistent files.)
//!
//! ## Multi-process sharing: generations, lease, fencing
//!
//! Checkpoints are **incremental** and **generation-numbered**: each
//! commit writes only the entries that changed since the previous
//! generation (new files named `art-<key>-g<gen>-e<epoch>.snap`), then
//! publishes `manifest-<gen>.json` referencing both the fresh files
//! and the retained files of earlier generations. The manifest rename
//! is the commit point; files orphaned by the new generation are
//! garbage-collected only *after* it is durable, so a crash at any
//! byte boundary leaves the previous generation fully readable.
//! Readers scan for the highest parseable generation (legacy
//! `manifest.json` reads as generation 0) and verify everything as
//! before.
//!
//! Writes are coordinated by the advisory single-writer lease in
//! [`lease`] (see its docs for the acquire/break/fence protocol); the
//! staleness policy for readers lives in
//! [`ServiceConfig::max_snapshot_age`](crate::ServiceConfig).

use crate::ladder::{PmfLadder, LADDER_MAX};
use crate::shard::{ShardCache, ShardLayer};
use crate::store::{ArtifactSet, LayoutKey, StoreKey};
use crate::AltrAnswer;
use jury_core::altr::JerProfile;
use jury_core::error::JuryError;
use jury_core::fingerprint::FingerprintKey;
use jury_core::juror::Juror;
use jury_core::paym::Staircase;
use jury_core::problem::Selection;
use jury_numeric::hash::splitmix64;
use jury_numeric::poibin::PoiBin;
use serde::{json, Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet};
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

pub mod fault;
pub(crate) mod lease;
pub mod watch;

pub use fault::{FaultAction, FaultPlane, FaultScheduler, NoFaults};
pub use lease::LeaseConfig;
pub use watch::SnapshotWatcher;

/// First bytes of every entry file. The trailing digit is the format
/// version: decoders refuse other versions (version skew is a counted
/// rejection, not an error).
const MAGIC: &[u8; 8] = b"JRYSNP01";

/// Manifest file name within a snapshot directory.
pub(crate) const MANIFEST: &str = "manifest.json";

/// Manifest schema version (see [`MAGIC`] for the entry-file version).
const MANIFEST_VERSION: u64 = 1;

// Section tags. Unknown tags are skipped on read (forward
// compatibility); duplicates and a missing END terminator are
// rejections.
const TAG_END: u32 = 0;
const TAG_KEY: u32 = 1;
const TAG_SEQ: u32 = 2;
const TAG_EPS_ORDER: u32 = 3;
const TAG_GREEDY_ORDER: u32 = 4;
const TAG_EPS_SORTED: u32 = 5;
const TAG_ALTR: u32 = 6;
const TAG_PROFILE: u32 = 7;
const TAG_LADDER: u32 = 8;
const TAG_STAIRCASE: u32 = 9;
const TAG_SHARDS: u32 = 10;

/// The integrity fold used by snapshot files: a splitmix64 chain over
/// the bytes taken as little-endian 64-bit words (zero-padded tail),
/// seeded with the length. Public so external tooling (and the fault
/// harness) can re-derive manifest checksums.
pub fn snapshot_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h = splitmix64(h ^ u64::from_le_bytes(chunk.try_into().expect("exact chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = splitmix64(h ^ u64::from_le_bytes(buf));
    }
    h
}

/// A section's trailing checksum binds the payload to its tag.
fn section_checksum(tag: u32, payload: &[u8]) -> u64 {
    splitmix64(snapshot_checksum(payload) ^ u64::from(tag))
}

/// What one snapshot write produced (observability; the frontend's
/// admin route reports it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Interned entries the committed generation references in total
    /// (freshly written plus retained).
    pub entries: usize,
    /// Entries actually (re)written this checkpoint — the dirty set.
    pub written: usize,
    /// Entries retained unchanged from earlier generations.
    pub retained: usize,
    /// Entry-file bytes written this checkpoint (manifest excluded).
    pub bytes: u64,
    /// The committed generation number (`0` = nothing ever committed:
    /// an empty store over an empty directory).
    pub generation: u64,
}

impl Serialize for SnapshotReport {
    fn to_value(&self) -> Value {
        Value::object([
            ("entries", self.entries.to_value()),
            ("written", self.written.to_value()),
            ("retained", self.retained.to_value()),
            ("bytes", self.bytes.to_value()),
            ("generation", self.generation.to_value()),
        ])
    }
}

/// Why a snapshot write did not (fully) commit.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure before any per-entry accounting applied.
    Io(io::Error),
    /// Another writer holds a live lease on the directory; this
    /// service can still restore read-only. `age_ms` is how old the
    /// holder's heartbeat was.
    LeaseHeld {
        /// The live holder's id.
        holder: String,
        /// Heartbeat age observed, milliseconds.
        age_ms: u64,
    },
    /// This writer's lease was broken (stale heartbeat, epoch bumped)
    /// and its commit was refused by the fence. The service must not
    /// write again without a fresh acquire; `winner: 0` means the
    /// superseding epoch could not be read.
    Fenced {
        /// The epoch this writer believed it held.
        ours: u64,
        /// The superseding epoch (0 if unknown).
        winner: u64,
    },
    /// Some entry files failed to write; **no manifest was committed**,
    /// so readers still see the previous generation intact.
    Partial {
        /// Entries written successfully before/around the failure.
        written: usize,
        /// Entries whose write failed.
        failed: usize,
        /// The first underlying failure.
        error: io::Error,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot io: {e}"),
            Self::LeaseHeld { holder, age_ms } => {
                write!(f, "writer lease held by {holder} (heartbeat {age_ms} ms old)")
            }
            Self::Fenced { ours, winner } => {
                write!(f, "writer fenced: epoch {ours} superseded by epoch {winner}")
            }
            Self::Partial { written, failed, error } => {
                write!(
                    f,
                    "partial snapshot: {written} entries written, {failed} failed, \
                     manifest not committed: {error}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) | Self::Partial { error: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

// ---------------------------------------------------------------------
// Binary primitives
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends one `[tag][len][payload][checksum]` section.
fn put_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    put_u32(out, tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u64(out, section_checksum(tag, payload));
}

/// Bounds-checked little-endian cursor over untrusted bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// An index bounded by the pool size `n`.
    fn index(&mut self, n: usize) -> Option<usize> {
        let v = self.u64()?;
        let v = usize::try_from(v).ok()?;
        (v < n).then_some(v)
    }

    /// A length field, sanity-capped so corrupt lengths cannot drive
    /// huge allocations before the (already length-checked) payload
    /// runs out.
    fn len_capped(&mut self, cap: usize) -> Option<usize> {
        let v = self.u64()?;
        let v = usize::try_from(v).ok()?;
        (v <= cap).then_some(v)
    }

    fn done(&self) -> Option<()> {
        (self.pos == self.bytes.len()).then_some(())
    }
}

/// Walks the section stream after the magic, verifying each section's
/// checksum, skipping unknown tags, and requiring the END marker to
/// land exactly at end-of-file (truncation and trailing garbage both
/// reject). Duplicate tags reject.
fn split_sections(bytes: &[u8]) -> Option<HashMap<u32, &[u8]>> {
    let mut r = Reader::new(bytes);
    let mut sections = HashMap::new();
    loop {
        let tag = r.u32()?;
        let len = r.u64()?;
        let len = usize::try_from(len).ok()?;
        let payload = r.take(len)?;
        let checksum = r.u64()?;
        if checksum != section_checksum(tag, payload) {
            return None;
        }
        if tag == TAG_END {
            if len != 0 {
                return None;
            }
            r.done()?;
            return Some(sections);
        }
        if tag <= TAG_SHARDS && sections.insert(tag, payload).is_some() {
            return None;
        }
    }
}

// ---------------------------------------------------------------------
// Entry encoding
// ---------------------------------------------------------------------

/// Serializes one interned entry to its snapshot file bytes. Bulk
/// arrays are raw little-endian words (JSON digits would dominate the
/// restart budget at 10⁶ jurors); only small structured values (the
/// AltrM answer, the staircase) embed wire-JSON.
pub(crate) fn encode_entry(key: &StoreKey, set: &ArtifactSet) -> Vec<u8> {
    let seq = set.seq();
    let n = seq.len();
    let mut out = Vec::with_capacity(64 + 40 * n);
    out.extend_from_slice(MAGIC);

    let mut p = Vec::with_capacity(41);
    put_u64(&mut p, key.fp.lanes[0]);
    put_u64(&mut p, key.fp.lanes[1]);
    put_u64(&mut p, key.fp.len);
    match key.layout {
        LayoutKey::Flat => p.push(0),
        LayoutKey::Sharded { shards } => {
            p.push(1);
            put_u64(&mut p, shards as u64);
        }
    }
    put_u64(&mut p, key.config);
    put_section(&mut out, TAG_KEY, &p);

    let mut p = Vec::with_capacity(16 * n);
    for &(eps_bits, cost_bits) in seq {
        put_u64(&mut p, eps_bits);
        put_u64(&mut p, cost_bits);
    }
    put_section(&mut out, TAG_SEQ, &p);

    for (tag, order) in [(TAG_EPS_ORDER, &*set.eps_order), (TAG_GREEDY_ORDER, &*set.greedy_order)] {
        let mut p = Vec::with_capacity(8 * n);
        for &i in order.iter() {
            put_u64(&mut p, i as u64);
        }
        put_section(&mut out, tag, &p);
    }

    let mut p = Vec::with_capacity(8 * n);
    for &e in set.eps_sorted.iter() {
        put_u64(&mut p, e.to_bits());
    }
    put_section(&mut out, TAG_EPS_SORTED, &p);

    if let Some(answer) = set.altr.get() {
        put_section(&mut out, TAG_ALTR, altr_to_json(answer).as_bytes());
    }

    if let Some(profile) = set.profile.get() {
        let mut p = Vec::new();
        for &(size, jer) in profile.entries() {
            put_u64(&mut p, size as u64);
            put_u64(&mut p, jer.to_bits());
        }
        put_section(&mut out, TAG_PROFILE, &p);
    }

    if let Some(ladder) = set.ladder.get() {
        let mut p = Vec::new();
        encode_ladder(&mut p, ladder);
        put_section(&mut out, TAG_LADDER, &p);
    }

    put_section(&mut out, TAG_STAIRCASE, json::to_string(&*set.staircase_read()).as_bytes());

    if let Some(layer) = set.shard_layer.get() {
        let mut p = Vec::new();
        encode_shards(&mut p, layer);
        put_section(&mut out, TAG_SHARDS, &p);
    }

    put_section(&mut out, TAG_END, &[]);
    out
}

/// `count (u64); per checkpoint: len, content_hash, pmf_len, pmf bits`.
fn encode_ladder(p: &mut Vec<u8>, ladder: &PmfLadder) {
    let checkpoints: Vec<(usize, &PoiBin)> = ladder.checkpoints_raw().collect();
    put_u64(p, checkpoints.len() as u64);
    for (len, pmf) in checkpoints {
        put_u64(p, len as u64);
        put_u64(p, pmf.content_hash());
        let values = pmf.pmf();
        put_u64(p, values.len() as u64);
        for &x in values {
            put_u64(p, x.to_bits());
        }
    }
}

/// Decodes a ladder, re-hashing every checkpoint pmf against its stored
/// [`PoiBin::content_hash`] and re-validating the distribution and the
/// ascending-length invariant. `max_len` bounds checkpoint lengths by
/// the run the ladder covers.
fn decode_ladder(r: &mut Reader<'_>, max_len: usize) -> Option<PmfLadder> {
    let count = r.len_capped(LADDER_MAX)?;
    let mut raw = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.len_capped(max_len.min(LADDER_MAX))?;
        let hash = r.u64()?;
        let pmf_len = r.len_capped(LADDER_MAX + 1)?;
        let mut pmf = Vec::with_capacity(pmf_len);
        for _ in 0..pmf_len {
            pmf.push(r.f64()?);
        }
        let pmf = PoiBin::try_from_pmf(pmf)?;
        if pmf.content_hash() != hash {
            return None;
        }
        raw.push((len, pmf));
    }
    PmfLadder::from_checkpoints_raw(raw)
}

/// `owner_len, owner (u32s), cache_count; per cache: size, eps_order,
/// eps bits, greedy_order, ladder`.
fn encode_shards(p: &mut Vec<u8>, layer: &ShardLayer) {
    let owner = layer.owner();
    put_u64(p, owner.len() as u64);
    for &o in owner {
        put_u32(p, o);
    }
    let caches = layer.caches();
    put_u64(p, caches.len() as u64);
    for cache in caches {
        let (eps_order, eps, greedy_order, ladder) = cache.raw_parts();
        put_u64(p, eps_order.len() as u64);
        for &i in eps_order {
            put_u64(p, i as u64);
        }
        for &e in eps {
            put_u64(p, e.to_bits());
        }
        for &i in greedy_order {
            put_u64(p, i as u64);
        }
        encode_ladder(p, ladder);
    }
}

/// Decodes and fully re-validates a shard layer: per-shard runs are
/// bound to the founding sequence (ε bits through the positions),
/// ladders re-hash per checkpoint, [`ShardCache::from_raw_parts`]
/// re-checks run alignment/sortedness, and [`ShardLayer::from_raw`]
/// re-checks the owner partition. The owner-vector comparison against
/// the *registering* pool happens downstream at adoption.
fn decode_shards(payload: &[u8], n: usize, seq: &[(u64, u64)]) -> Option<ShardLayer> {
    let mut r = Reader::new(payload);
    let owner_len = r.len_capped(n)?;
    if owner_len != n {
        return None;
    }
    let mut owner = Vec::with_capacity(owner_len);
    for _ in 0..owner_len {
        owner.push(r.u32()?);
    }
    let cache_count = r.len_capped(n.max(1))?;
    let mut caches = Vec::with_capacity(cache_count);
    for _ in 0..cache_count {
        let size = r.len_capped(n)?;
        let mut eps_order = Vec::with_capacity(size);
        for _ in 0..size {
            eps_order.push(r.index(n)?);
        }
        let mut eps = Vec::with_capacity(size);
        for _ in 0..size {
            eps.push(r.f64()?);
        }
        let mut greedy_order = Vec::with_capacity(size);
        for _ in 0..size {
            greedy_order.push(r.index(n)?);
        }
        if eps.iter().zip(&eps_order).any(|(&e, &p)| e.to_bits() != seq[p].0) {
            return None;
        }
        let ladder = decode_ladder(&mut r, size)?;
        let cache = ShardCache::from_raw_parts(eps_order, eps, greedy_order, ladder)?;
        caches.push(Arc::new(cache));
    }
    r.done()?;
    ShardLayer::from_raw(owner, caches)
}

/// The AltrM answer as wire-JSON: `{"ok": bool, "value": Selection |
/// JuryError}` reusing the core wire codecs.
fn altr_to_json(answer: &AltrAnswer) -> String {
    let (ok, value) = match answer {
        Ok(selection) => (true, selection.as_ref().to_value()),
        Err(error) => (false, error.to_value()),
    };
    json::to_string(&Value::object([("ok", ok.to_value()), ("value", value)]))
}

fn altr_from_json(payload: &[u8], n: usize) -> Option<AltrAnswer> {
    let text = std::str::from_utf8(payload).ok()?;
    let value = json::parse(text).ok()?;
    let ok = value.get("ok")?.as_bool()?;
    let inner = value.get("value")?;
    if ok {
        let selection = Selection::from_value(inner).ok()?;
        valid_members(&selection, n).then(|| Ok(Arc::new(selection)))
    } else {
        Some(Err(JuryError::from_value(inner).ok()?))
    }
}

/// Members must be strictly ascending and in-range — the invariant
/// every solver output holds and downstream translation relies on.
fn valid_members(selection: &Selection, n: usize) -> bool {
    selection.members.iter().all(|&m| m < n) && selection.members.windows(2).all(|w| w[0] < w[1])
}

fn is_permutation(order: &[usize], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    order.iter().all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
}

// ---------------------------------------------------------------------
// Verified load
// ---------------------------------------------------------------------

/// Loads and fully verifies one cataloged entry for the registering
/// pool (see the module docs for the gate list). `None` is a counted
/// rejection; the caller falls back to the cold build.
fn load_entry(
    dir: &Path,
    record: &ManifestEntry,
    key: &StoreKey,
    jurors: &[Juror],
) -> Option<ArtifactSet> {
    let bytes = fs::read(dir.join(&record.file)).ok()?;
    if bytes.len() as u64 != record.bytes || snapshot_checksum(&bytes) != record.checksum {
        return None;
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let sections = split_sections(&bytes[MAGIC.len()..])?;

    let mut kr = Reader::new(sections.get(&TAG_KEY)?);
    let lanes = [kr.u64()?, kr.u64()?];
    let len = kr.u64()?;
    let layout = match kr.u8()? {
        0 => LayoutKey::Flat,
        1 => LayoutKey::Sharded { shards: kr.len_capped(usize::MAX)? },
        _ => return None,
    };
    let config = kr.u64()?;
    kr.done()?;
    if (StoreKey { fp: FingerprintKey { lanes, len }, layout, config }) != *key {
        return None;
    }
    let n = usize::try_from(key.fp.len).ok()?;
    if jurors.len() != n {
        return None;
    }

    let mut sr = Reader::new(sections.get(&TAG_SEQ)?);
    let mut seq = Vec::with_capacity(n);
    for _ in 0..n {
        seq.push((sr.u64()?, sr.u64()?));
    }
    sr.done()?;

    let mut orders = [Vec::new(), Vec::new()];
    for (slot, tag) in orders.iter_mut().zip([TAG_EPS_ORDER, TAG_GREEDY_ORDER]) {
        let mut r = Reader::new(sections.get(&tag)?);
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            order.push(r.index(n)?);
        }
        r.done()?;
        if !is_permutation(&order, n) {
            return None;
        }
        *slot = order;
    }
    let [eps_order, greedy_order] = orders;

    let mut er = Reader::new(sections.get(&TAG_EPS_SORTED)?);
    let mut eps_sorted = Vec::with_capacity(n);
    for _ in 0..n {
        eps_sorted.push(er.f64()?);
    }
    er.done()?;
    // Rank/position binding: the sorted run must be exactly the ε bits
    // of the sequence read through the ε order, and non-decreasing
    // (incomparable NaN pairs rejected too).
    if eps_sorted.iter().zip(&eps_order).any(|(&e, &p)| e.to_bits() != seq[p].0) {
        return None;
    }
    if eps_sorted.windows(2).any(|w| w[0].partial_cmp(&w[1]).is_none_or(|o| o.is_gt())) {
        return None;
    }

    let altr = match sections.get(&TAG_ALTR) {
        Some(payload) => Some(altr_from_json(payload, n)?),
        None => None,
    };

    let profile = match sections.get(&TAG_PROFILE) {
        Some(payload) => {
            let mut r = Reader::new(payload);
            let count = payload.len() / 16;
            if count * 16 != payload.len() || 2 * count > n + 1 {
                return None;
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let size = r.len_capped(n)?;
                entries.push((size, r.f64()?));
            }
            r.done()?;
            Some(Arc::new(JerProfile::from_entries(entries)?))
        }
        None => None,
    };

    let ladder = match sections.get(&TAG_LADDER) {
        Some(payload) => {
            let mut r = Reader::new(payload);
            let ladder = decode_ladder(&mut r, n)?;
            r.done()?;
            Some(ladder)
        }
        None => None,
    };

    let staircase = match sections.get(&TAG_STAIRCASE) {
        Some(payload) => {
            let text = std::str::from_utf8(payload).ok()?;
            let staircase: Staircase = json::from_str(text).ok()?;
            if staircase.selections().any(|s| !valid_members(s, n)) {
                return None;
            }
            staircase
        }
        None => Staircase::new(),
    };

    let shard_layer = match (key.layout, sections.get(&TAG_SHARDS)) {
        (LayoutKey::Flat, Some(_)) => return None,
        (LayoutKey::Flat, None) | (LayoutKey::Sharded { .. }, None) => None,
        (LayoutKey::Sharded { shards }, Some(payload)) => {
            let layer = decode_shards(payload, n, &seq)?;
            if layer.caches().len() != shards {
                return None;
            }
            Some(layer)
        }
    };

    let set = ArtifactSet::from_restored(
        seq,
        eps_order,
        eps_sorted,
        greedy_order,
        altr,
        profile,
        ladder,
        shard_layer,
        staircase,
    );
    // The decisive content gate: the decoded founding sequence must
    // admit the live registering pool — the same comparison a warm
    // in-memory entry would run. A doctored manifest that borrows
    // another pool's fingerprint dies on the KEY cross-check above; a
    // colliding fingerprint dies here.
    set.match_pool(jurors)?;
    Some(set)
}

// ---------------------------------------------------------------------
// Manifest and catalog
// ---------------------------------------------------------------------

/// One manifest line: where an entry lives and what it must hash to.
#[derive(Debug, Clone)]
struct ManifestEntry {
    file: String,
    layout: LayoutKey,
    config: u64,
    bytes: u64,
    checksum: u64,
}

fn hex(v: u64) -> Value {
    Value::String(format!("{v:016x}"))
}

fn from_hex(value: Option<&Value>) -> Option<u64> {
    u64::from_str_radix(value?.as_str()?, 16).ok()
}

/// The name of generation `gen`'s manifest. Generation 0 is the
/// legacy single-manifest name so pre-generation snapshots stay
/// readable.
fn manifest_name(gen: u64) -> String {
    if gen == 0 {
        MANIFEST.to_string()
    } else {
        format!("manifest-{gen}.json")
    }
}

/// Inverse of [`manifest_name`]: `Some(gen)` iff `name` is a manifest
/// file name.
fn manifest_generation(name: &str) -> Option<u64> {
    if name == MANIFEST {
        return Some(0);
    }
    let digits = name.strip_prefix("manifest-")?.strip_suffix(".json")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Every manifest present in `dir`, highest generation first.
fn scan_manifests(dir: &Path) -> Vec<(u64, String)> {
    let mut found = Vec::new();
    if let Ok(read) = fs::read_dir(dir) {
        for entry in read.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(gen) = manifest_generation(name) {
                found.push((gen, name.to_string()));
            }
        }
    }
    found.sort_by_key(|&(gen, _)| std::cmp::Reverse(gen));
    found
}

/// The parsed manifest of a snapshot directory, indexed by content
/// fingerprint alone — so a pool whose content *was* snapshotted but
/// whose layout or config bits have since drifted still registers a
/// counted rejection (the snapshot promised this content and cannot
/// deliver it) rather than a silent miss.
#[derive(Debug, Clone, Default)]
pub(crate) struct Catalog {
    dir: PathBuf,
    /// Manifests present but none readable (corrupt JSON, version
    /// skew): every restore attempt is a counted rejection.
    poisoned: bool,
    /// The generation this catalog reflects (0 = legacy manifest or
    /// nothing on disk).
    generation: u64,
    /// When that generation was committed (absent on legacy
    /// manifests) — the basis of the staleness gate.
    written_at_ms: Option<u64>,
    entries: HashMap<FingerprintKey, Vec<ManifestEntry>>,
}

/// One restore attempt's outcome: the verified set (if any candidate
/// survived) plus how many candidates were rejected on the way.
pub(crate) struct RestoreAttempt {
    pub set: Option<ArtifactSet>,
    pub rejections: usize,
}

impl Catalog {
    /// Reads the highest parseable manifest generation under `dir`.
    /// Unreadable generations (corrupt JSON, torn GC race, version
    /// skew) fall through to the next lower one; only a directory
    /// whose *every* manifest is unreadable poisons the catalog so
    /// attempts are counted as rejections. No manifests at all is an
    /// empty catalog (fresh directory, nothing to restore — not an
    /// error). One re-scan absorbs the race where a writer commits a
    /// new generation and GCs the old one mid-load.
    pub(crate) fn load(dir: &Path) -> Self {
        for _ in 0..2 {
            let found = scan_manifests(dir);
            if found.is_empty() {
                return Self { dir: dir.to_path_buf(), ..Self::default() };
            }
            for (gen, name) in &found {
                let Ok(text) = fs::read_to_string(dir.join(name)) else { continue };
                let Some(parsed) = parse_manifest(&text) else { continue };
                let mut entries: HashMap<FingerprintKey, Vec<ManifestEntry>> = HashMap::new();
                for (fp, record) in parsed.records {
                    entries.entry(fp).or_default().push(record);
                }
                return Self {
                    dir: dir.to_path_buf(),
                    poisoned: false,
                    generation: *gen,
                    written_at_ms: parsed.written_at_ms,
                    entries,
                };
            }
        }
        Self { dir: dir.to_path_buf(), poisoned: true, ..Self::default() }
    }

    /// The generation this catalog reflects (0 = legacy or none).
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// When this catalog's generation was committed, if recorded.
    pub(crate) fn written_at_ms(&self) -> Option<u64> {
        self.written_at_ms
    }

    /// Whether this catalog holds candidate entries for `fp` — i.e. a
    /// restore attempt would actually open files (used to scope the
    /// staleness gate to pools the snapshot could have served).
    pub(crate) fn has_candidates(&self, fp: &FingerprintKey) -> bool {
        !self.poisoned && self.entries.contains_key(fp)
    }

    /// The staleness gate: `true` when [`crate::ServiceConfig::
    /// max_snapshot_age`] is set and this catalog's commit stamp is
    /// older than allowed — or absent entirely (legacy manifests have
    /// no stamp; under an explicit staleness policy an unstampable
    /// snapshot is conservatively treated as stale).
    pub(crate) fn is_stale(&self, max_age: Option<Duration>) -> bool {
        let Some(max_age) = max_age else { return false };
        match self.written_at_ms {
            Some(written) => lease::now_ms().saturating_sub(written) > max_age.as_millis() as u64,
            None => true,
        }
    }

    /// Attempts to restore a verified entry for `key` on behalf of the
    /// registering `jurors`. Candidates are tried in manifest order;
    /// the first to pass every gate wins. Rejection accounting follows
    /// the catalog contract: failed candidates, config/layout drift
    /// over known content, and a poisoned manifest all count; content
    /// the snapshot never knew is a plain miss.
    pub(crate) fn restore(&self, key: &StoreKey, jurors: &[Juror]) -> RestoreAttempt {
        if self.poisoned {
            return RestoreAttempt { set: None, rejections: 1 };
        }
        let Some(candidates) = self.entries.get(&key.fp) else {
            return RestoreAttempt { set: None, rejections: 0 };
        };
        let mut rejections = 0usize;
        let mut any_match = false;
        for record in candidates {
            if record.layout != key.layout || record.config != key.config {
                continue;
            }
            any_match = true;
            match load_entry(&self.dir, record, key, jurors) {
                Some(set) => return RestoreAttempt { set: Some(set), rejections },
                None => rejections += 1,
            }
        }
        if !any_match {
            rejections += 1;
        }
        RestoreAttempt { set: None, rejections }
    }
}

/// A successfully parsed manifest: the entry records plus the
/// generation metadata (absent on legacy manifests — the fields are
/// additive, so pre-generation manifests still parse).
struct ParsedManifest {
    records: Vec<(FingerprintKey, ManifestEntry)>,
    /// Lease epoch the manifest was committed under (0 = legacy).
    epoch: u64,
    /// Wall-clock commit stamp, milliseconds since the Unix epoch.
    written_at_ms: Option<u64>,
}

fn parse_manifest(text: &str) -> Option<ParsedManifest> {
    let value = json::parse(text).ok()?;
    if value.get("format")?.as_str()? != "jury-snapshot"
        || value.get("version")?.as_u64()? != MANIFEST_VERSION
    {
        return None;
    }
    let mut records = Vec::new();
    for entry in value.get("entries")?.as_array()? {
        let lanes = entry.get("lanes")?.as_array()?;
        if lanes.len() != 2 {
            return None;
        }
        let fp = FingerprintKey {
            lanes: [from_hex(Some(&lanes[0]))?, from_hex(Some(&lanes[1]))?],
            len: from_hex(entry.get("len"))?,
        };
        let layout = match entry.get("layout")?.as_str()? {
            "flat" => LayoutKey::Flat,
            "sharded" => {
                LayoutKey::Sharded { shards: usize::try_from(from_hex(entry.get("shards"))?).ok()? }
            }
            _ => return None,
        };
        let file = entry.get("file")?.as_str()?;
        // Entry files live flat in the snapshot directory; a manifest
        // naming anything else is malformed.
        if file.is_empty() || file.contains(['/', '\\']) || file.contains("..") {
            return None;
        }
        let record = ManifestEntry {
            file: file.to_string(),
            layout,
            config: from_hex(entry.get("config"))?,
            bytes: from_hex(entry.get("bytes"))?,
            checksum: from_hex(entry.get("checksum"))?,
        };
        records.push((fp, record));
    }
    Some(ParsedManifest {
        records,
        epoch: from_hex(value.get("epoch")).unwrap_or(0),
        written_at_ms: from_hex(value.get("written_at_ms")),
    })
}

// ---------------------------------------------------------------------
// Crash-safe write
// ---------------------------------------------------------------------

/// Content-keyed entry file name, qualified by the generation and
/// lease epoch that first wrote it: retained files from earlier
/// generations coexist with fresh ones, and two writers racing across
/// an epoch bump can never collide on a name.
fn entry_file_name(key: &StoreKey, gen: u64, epoch: u64) -> String {
    let mut h = splitmix64(key.fp.lanes[0]);
    h = splitmix64(h ^ key.fp.lanes[1]);
    h = splitmix64(h ^ key.fp.len);
    let layout_word = match key.layout {
        LayoutKey::Flat => 0u64,
        LayoutKey::Sharded { shards } => 1 | (shards as u64) << 1,
    };
    h = splitmix64(h ^ layout_word);
    format!("art-{:016x}-g{gen}-e{epoch}.snap", splitmix64(h ^ key.config))
}

/// Temp-write + fsync + atomic rename + (best-effort) directory fsync.
/// `op` prefixes the fault-plane consultation before each stage
/// (`"entry"` or `"manifest"`), so a chaos kill can land between the
/// write, the durability point, and the publish rename.
fn write_atomic(
    faults: &dyn fault::FaultPlane,
    op: &str,
    dir: &Path,
    name: &str,
    bytes: &[u8],
) -> io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    faults.before(&format!("{op}.create"))?;
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    faults.before(&format!("{op}.sync"))?;
    file.sync_all()?;
    drop(file);
    faults.before(&format!("{op}.rename"))?;
    fs::rename(&tmp, dir.join(name))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// The manifest record for one persisted entry.
fn manifest_record(key: &StoreKey, file: &str, bytes: u64, checksum: u64) -> Value {
    let (layout, shards) = match key.layout {
        LayoutKey::Flat => ("flat", None),
        LayoutKey::Sharded { shards } => ("sharded", Some(shards)),
    };
    let mut fields = vec![
        ("file", Value::String(file.to_string())),
        ("lanes", Value::Array(vec![hex(key.fp.lanes[0]), hex(key.fp.lanes[1])])),
        ("len", hex(key.fp.len)),
        ("layout", Value::String(layout.to_string())),
    ];
    if let Some(shards) = shards {
        fields.push(("shards", hex(shards as u64)));
    }
    fields.push(("config", hex(key.config)));
    fields.push(("bytes", hex(bytes)));
    fields.push(("checksum", hex(checksum)));
    Value::object(fields)
}

/// One entry as the writer last committed it — enough to decide
/// cleanness without re-reading the file.
#[derive(Debug, Clone)]
struct Persisted {
    file: String,
    bytes: u64,
    checksum: u64,
    /// The [`ArtifactSet::mutation_version`] the persisted bytes
    /// reflect. `None` when the record was reloaded from a manifest
    /// (another process, or a prior life of this one) — cleanness then
    /// falls back to an encode-and-compare check.
    version: Option<u64>,
}

/// The writer's view of one snapshot directory across checkpoints.
#[derive(Debug, Default)]
struct DirState {
    /// Whether `gen`/`persisted` reflect an actual disk read (a fresh
    /// state over an untouched legacy directory has `gen == 0` both
    /// ways, but nothing loaded).
    loaded: bool,
    /// The last generation this writer observed committed.
    gen: u64,
    /// The lease epoch this writer believes it holds, if any.
    epoch: Option<u64>,
    /// Commit stamp of `gen`, for the stats gauges.
    written_at_ms: Option<u64>,
    persisted: HashMap<StoreKey, Persisted>,
}

/// Per-service writer state: a stable holder id plus one [`DirState`]
/// per snapshot directory ever written. Never cloned with the service
/// — a clone is a distinct would-be writer with its own identity.
#[derive(Debug)]
pub(crate) struct WriterState {
    holder: String,
    dirs: HashMap<PathBuf, DirState>,
    /// The fault plane every snapshot/lease filesystem operation
    /// consults — [`fault::NoFaults`] in production, a
    /// [`fault::FaultScheduler`] under the chaos harness.
    faults: Arc<dyn fault::FaultPlane>,
}

impl Default for WriterState {
    fn default() -> Self {
        Self {
            holder: lease::new_holder_id(),
            dirs: HashMap::new(),
            faults: Arc::new(fault::NoFaults),
        }
    }
}

impl WriterState {
    /// This writer's cross-process holder identity (the id its lease
    /// files carry).
    pub(crate) fn holder(&self) -> &str {
        &self.holder
    }

    /// Replaces the fault plane (test/chaos instrumentation; the
    /// default is the no-op production plane).
    pub(crate) fn set_fault_plane(&mut self, faults: Arc<dyn fault::FaultPlane>) {
        self.faults = faults;
    }

    /// The highest generation (and its commit stamp) this writer has
    /// observed across every directory it wrote, for the stats gauges.
    /// `None` until something committed.
    pub(crate) fn observed(&self) -> Option<(u64, Option<u64>)> {
        self.dirs
            .values()
            .filter(|st| st.loaded && st.gen > 0)
            .max_by_key(|st| st.gen)
            .map(|st| (st.gen, st.written_at_ms))
    }
}

/// Canonical map key for a snapshot directory (two spellings of one
/// path must share writer state).
fn dir_key(dir: &Path) -> PathBuf {
    fs::canonicalize(dir).unwrap_or_else(|_| dir.to_path_buf())
}

/// Releases the writer lease on `dir` if this writer holds it —
/// graceful drain. Forgetting the epoch also makes any later write a
/// fresh acquire rather than a believed-held refresh.
pub(crate) fn release_lease(state: &mut WriterState, dir: &Path) -> io::Result<()> {
    let key = dir_key(dir);
    let held = state.dirs.get(&key).is_some_and(|st| st.epoch.is_some());
    if held {
        if let Some(st) = state.dirs.get_mut(&key) {
            st.epoch = None;
        }
        lease::release(&*state.faults, &key, &state.holder)?;
    }
    Ok(())
}

/// Writes an incremental, lease-fenced checkpoint of the store.
///
/// The commit sequence: acquire/refresh the lease (possibly breaking a
/// stale one — see [`lease`]), sync this writer's view with the
/// highest on-disk generation, diff the live store against it (a
/// matching mutation-version or matching encoded length+checksum means
/// *clean*: the already-persisted file is retained untouched), write
/// only the dirty entries (fresh `-g<gen>-` names, temp + fsync +
/// rename each), re-verify the lease (the fence), commit
/// `manifest-<gen>.json`, then garbage-collect files no manifest of
/// this generation references. A failure anywhere before the manifest
/// rename leaves the previous generation fully readable; per-entry
/// write failures abort the commit as [`SnapshotError::Partial`].
///
/// A checkpoint with nothing dirty and nothing removed skips the
/// commit entirely — no file in the directory is touched (beyond the
/// lease heartbeat) and the report shows `written == 0` at the current
/// generation.
pub(crate) fn write_incremental<'a>(
    state: &mut WriterState,
    dir: &Path,
    ttl: Duration,
    entries: impl Iterator<Item = (&'a StoreKey, &'a Arc<ArtifactSet>)>,
) -> Result<SnapshotReport, SnapshotError> {
    fs::create_dir_all(dir)?;
    let key = dir_key(dir);
    let dir = key.as_path();
    let faults = Arc::clone(&state.faults);
    let faults = &*faults;

    // Sync with the highest parseable on-disk generation. The epoch
    // recorded there floors any lease we acquire or break.
    faults.before("scan.dir")?;
    let mut disk_gen = 0u64;
    let mut floor_epoch = 0u64;
    let mut disk_manifest: Option<ParsedManifest> = None;
    for (gen, name) in scan_manifests(dir) {
        faults.before("manifest.read")?;
        let Ok(text) = fs::read_to_string(dir.join(&name)) else { continue };
        if let Some(parsed) = parse_manifest(&text) {
            disk_gen = gen;
            floor_epoch = parsed.epoch;
            disk_manifest = Some(parsed);
            break;
        }
    }

    let st = state.dirs.entry(key.clone()).or_default();
    if !st.loaded || st.gen != disk_gen {
        // Someone else committed (or this is our first look): adopt
        // the disk view. Versions are unknown, so cleanness degrades
        // to encode-and-compare until our next commit re-stamps.
        st.loaded = true;
        st.gen = disk_gen;
        let parsed = disk_manifest.unwrap_or(ParsedManifest {
            records: Vec::new(),
            epoch: 0,
            written_at_ms: None,
        });
        st.written_at_ms = parsed.written_at_ms;
        st.persisted = parsed
            .records
            .into_iter()
            .map(|(fp, r)| {
                let key = StoreKey { fp, layout: r.layout, config: r.config };
                (
                    key,
                    Persisted { file: r.file, bytes: r.bytes, checksum: r.checksum, version: None },
                )
            })
            .collect();
    }

    let epoch = match lease::acquire(faults, dir, &state.holder, st.epoch, ttl, floor_epoch) {
        Ok(epoch) => epoch,
        Err(e) => {
            if matches!(e, SnapshotError::Fenced { .. }) {
                // We no longer hold anything; a later call starts over.
                st.epoch = None;
                st.loaded = false;
            }
            return Err(e);
        }
    };
    st.epoch = Some(epoch);

    // Diff the live store against the persisted view.
    let next_gen = st.gen + 1;
    let mut live: HashSet<StoreKey> = HashSet::new();
    let mut retained: Vec<(StoreKey, Persisted)> = Vec::new();
    let mut fresh: Vec<(StoreKey, Persisted)> = Vec::new();
    let mut written = 0usize;
    let mut failed = 0usize;
    let mut bytes_written = 0u64;
    let mut first_error: Option<io::Error> = None;
    for (key, set) in entries {
        live.insert(*key);
        let version = set.mutation_version();
        let mut encoded: Option<Vec<u8>> = None;
        if let Some(rec) = st.persisted.get(key) {
            let on_disk = dir.join(&rec.file).is_file();
            if on_disk && rec.version == Some(version) {
                retained.push((*key, rec.clone()));
                continue;
            }
            if on_disk {
                let enc = encode_entry(key, set);
                if rec.bytes == enc.len() as u64 && rec.checksum == snapshot_checksum(&enc) {
                    // Byte-identical to what is already persisted:
                    // retain the file, re-stamp the version.
                    retained.push((*key, Persisted { version: Some(version), ..rec.clone() }));
                    continue;
                }
                encoded = Some(enc);
            }
            // A missing retained file falls through to a rewrite —
            // self-healing against out-of-band deletion.
        }
        let enc = encoded.unwrap_or_else(|| encode_entry(key, set));
        let file = entry_file_name(key, next_gen, epoch);
        match write_atomic(faults, "entry", dir, &file, &enc) {
            Ok(()) => {
                written += 1;
                bytes_written += enc.len() as u64;
                let checksum = snapshot_checksum(&enc);
                fresh.push((
                    *key,
                    Persisted { file, bytes: enc.len() as u64, checksum, version: Some(version) },
                ));
            }
            Err(e) => {
                failed += 1;
                first_error.get_or_insert(e);
            }
        }
    }
    if let Some(error) = first_error {
        // No manifest commit: readers keep the previous generation,
        // and the writer's view is left untouched for a retry.
        return Err(SnapshotError::Partial { written, failed, error });
    }

    let removed = st.persisted.keys().any(|k| !live.contains(k));
    if written == 0 && !removed {
        // Nothing changed: skip the commit, keep every mtime. Only
        // the version re-stamps learned above are carried forward.
        let report = SnapshotReport {
            entries: retained.len(),
            written: 0,
            retained: retained.len(),
            bytes: 0,
            generation: st.gen,
        };
        st.persisted = retained.into_iter().collect();
        return Ok(report);
    }

    // The fence: a zombie whose lease was broken while it encoded must
    // not publish. Checked immediately before the commit rename.
    if let Err(e) = lease::verify(faults, dir, &state.holder, epoch) {
        st.epoch = None;
        st.loaded = false;
        return Err(e);
    }

    let mut manifest_entries = Vec::with_capacity(retained.len() + fresh.len());
    for (key, rec) in retained.iter().chain(fresh.iter()) {
        manifest_entries.push(manifest_record(key, &rec.file, rec.bytes, rec.checksum));
    }
    let manifest = Value::object([
        ("format", Value::String("jury-snapshot".to_string())),
        ("version", MANIFEST_VERSION.to_value()),
        ("generation", hex(next_gen)),
        ("epoch", hex(epoch)),
        ("written_at_ms", hex(lease::now_ms())),
        ("entries", Value::Array(manifest_entries)),
    ]);
    let manifest_file = manifest_name(next_gen);
    write_atomic(
        faults,
        "manifest",
        dir,
        &manifest_file,
        json::to_string_pretty(&manifest).as_bytes(),
    )?;

    // The new generation is durable: garbage-collect everything it
    // does not reference — older manifests, orphaned entry files, and
    // stray temp files from crashed writers.
    let keep: HashSet<&str> =
        retained.iter().chain(fresh.iter()).map(|(_, rec)| rec.file.as_str()).collect();
    if let Ok(read) = fs::read_dir(dir) {
        for entry in read.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_manifest = manifest_generation(name).is_some_and(|g| g != next_gen);
            let stale_entry = name.ends_with(".snap") && !keep.contains(name);
            let stray_tmp = name.ends_with(".tmp");
            if (stale_manifest || stale_entry || stray_tmp) && faults.before("gc.unlink").is_ok() {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    let report = SnapshotReport {
        entries: retained.len() + fresh.len(),
        written,
        retained: retained.len(),
        bytes: bytes_written,
        generation: next_gen,
    };
    st.gen = next_gen;
    st.written_at_ms = Some(lease::now_ms());
    st.persisted = retained.into_iter().chain(fresh).collect();
    Ok(report)
}
