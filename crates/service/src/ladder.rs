//! Prefix-pmf checkpoint ladders with rescan-free repair.
//!
//! A [`PmfLadder`] materialises the Poisson-binomial distribution of the
//! `L` most reliable jurors of one ε-sorted run at checkpoint sizes
//! `LADDER_SPACING, 2·LADDER_SPACING, …` up to [`LADDER_MAX`], so a JER
//! point query resumes from the nearest checkpoint (`O(n·spacing)` pushes)
//! instead of rebuilding the prefix distribution from scratch. Both
//! layouts use it: each shard lays a ladder over its own sorted rates, and
//! flat pools lay one over the global ε order for
//! [`jer_probe`](crate::JuryService::jer_probe).
//!
//! The repair half is what makes juror mutations cheap: moving one sorted
//! value changes each checkpoint's prefix *multiset* by at most one
//! element, so [`PmfLadder::repair_update`] / [`PmfLadder::repair_remove`]
//! patch every affected checkpoint with one factor
//! division ([`PoiBin::remove_factor`] /
//! [`PoiBin::replace_factor`]) plus at most one [`PoiBin::push`] — `O(L)`
//! per checkpoint instead of the `O(L²)` rebuild — and fall back to a full
//! rebuild when the division's conditioning guard trips (the juror's old
//! rate within [`jury_numeric::poibin::DECONV_GUARD_BAND`] of ½, or the
//! accumulated error budget exceeded). Repaired checkpoints are
//! *numerically* (not bit-) equal to rebuilt ones — exactly the
//! [`jer_probe`](crate::JuryService::jer_probe) contract, whose answers
//! stay within [`PROBE_REPAIR_TOL`] of a fresh evaluation.

use jury_numeric::poibin::PoiBin;

/// Spacing between prefix-pmf checkpoints in a ladder.
pub(crate) const LADDER_SPACING: usize = 64;

/// Largest sorted-prefix length a ladder materialises checkpoints for.
/// Probes beyond the ladder fall back to a fresh batch construction —
/// optimal juries are small in practice, so the ladder covers the hot
/// range without `O(n²)` build cost on huge runs.
pub(crate) const LADDER_MAX: usize = 1024;

/// Documented bound on how far a deconvolution-repaired
/// [`jer_probe`](crate::JuryService::jer_probe) may drift from a fresh
/// evaluation over the same jurors (see the module docs; fresh paths
/// already agree only within convolution rounding).
pub const PROBE_REPAIR_TOL: f64 = 1e-8;

/// The prefix-pmf checkpoint ladder of one ε-sorted run.
#[derive(Debug, Clone, Default)]
pub(crate) struct PmfLadder {
    /// `checkpoints[k]` is the pmf of the first `(k+1)·LADDER_SPACING`
    /// sorted rates.
    checkpoints: Vec<PoiBin>,
}

impl PmfLadder {
    /// Lays the ladder over `eps` (ascending ε values) with sequential
    /// pushes — `O(min(len, LADDER_MAX)²)` once per cold run.
    pub(crate) fn build(eps: &[f64]) -> Self {
        let mut checkpoints = Vec::with_capacity(eps.len().min(LADDER_MAX) / LADDER_SPACING);
        let mut pmf = PoiBin::empty();
        for (i, &e) in eps.iter().take(LADDER_MAX).enumerate() {
            pmf.push(e);
            if (i + 1) % LADDER_SPACING == 0 {
                checkpoints.push(pmf.clone());
            }
        }
        Self { checkpoints }
    }

    /// The distribution of the `c` most reliable members of `eps`,
    /// resumed from the nearest checkpoint when one is close enough, else
    /// batch-built (adaptive DP/CBA).
    pub(crate) fn prefix_into(&self, eps: &[f64], c: usize, out: &mut PoiBin) {
        let checkpoint = (c / LADDER_SPACING).min(self.checkpoints.len());
        let start = checkpoint * LADDER_SPACING;
        if c - start <= LADDER_SPACING {
            if checkpoint > 0 {
                out.copy_from(&self.checkpoints[checkpoint - 1]);
            } else {
                out.reset();
            }
            for &e in &eps[start..c] {
                out.push(e);
            }
        } else {
            *out = PoiBin::from_error_rates(&eps[..c]);
        }
    }

    /// Repairs the ladder after one sorted value moved from rank `r_old`
    /// (where it held `old_e`) to rank `r_new`; `eps` is the
    /// **post-repair** sorted run (so the new value is `eps[r_new]`).
    /// Each checkpoint whose prefix multiset changed gets one factor
    /// division plus at most one push. Returns `false` when any division
    /// declined and the whole ladder was rebuilt instead.
    pub(crate) fn repair_update(
        &mut self,
        eps: &[f64],
        old_e: f64,
        r_old: usize,
        r_new: usize,
    ) -> bool {
        debug_assert_eq!(
            self.checkpoints.len(),
            eps.len().min(LADDER_MAX) / LADDER_SPACING,
            "ladder must cover the run before a repair"
        );
        for (k, pmf) in self.checkpoints.iter_mut().enumerate() {
            let len = (k + 1) * LADDER_SPACING;
            let patched = if r_old < len && r_new < len {
                // The moved value stayed inside this prefix.
                pmf.replace_factor(old_e, eps[r_new])
            } else if r_old < len {
                // Moved out: the value at the boundary slid in.
                pmf.remove_factor(old_e).map(|()| pmf.push(eps[len - 1]))
            } else if r_new < len {
                // Moved in: the old boundary value (now at `len`) slid out.
                pmf.remove_factor(eps[len]).map(|()| pmf.push(eps[r_new]))
            } else {
                Ok(())
            };
            if patched.is_err() {
                *self = Self::build(eps);
                return false;
            }
        }
        true
    }

    /// Repairs the ladder after the value `old_e` at rank `r` was removed
    /// from the run; `eps` is the **post-removal** sorted run. Returns
    /// `false` when a division declined and the ladder was rebuilt.
    pub(crate) fn repair_remove(&mut self, eps: &[f64], old_e: f64, r: usize) -> bool {
        // The run shrank: checkpoints beyond its new length vanish.
        self.checkpoints.truncate(eps.len().min(LADDER_MAX) / LADDER_SPACING);
        for (k, pmf) in self.checkpoints.iter_mut().enumerate() {
            let len = (k + 1) * LADDER_SPACING;
            if r < len && pmf.remove_factor(old_e).map(|()| pmf.push(eps[len - 1])).is_err() {
                *self = Self::build(eps);
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(n: usize) -> Vec<f64> {
        let mut eps: Vec<f64> =
            (0..n).map(|i| 0.02 + 0.9 * ((i as f64 * 0.6180339887498949) % 1.0)).collect();
        eps.sort_by(f64::total_cmp);
        eps
    }

    fn assert_ladder_close(got: &PmfLadder, eps: &[f64], tol: f64) {
        let want = PmfLadder::build(eps);
        assert_eq!(got.checkpoints.len(), want.checkpoints.len());
        for (k, (g, w)) in got.checkpoints.iter().zip(&want.checkpoints).enumerate() {
            assert_eq!(g.n(), w.n(), "checkpoint {k}");
            for i in 0..=g.n() {
                assert!(
                    (g.prob_eq(i) - w.prob_eq(i)).abs() < tol,
                    "checkpoint {k} entry {i}: {} vs {}",
                    g.prob_eq(i),
                    w.prob_eq(i)
                );
            }
        }
    }

    #[test]
    fn prefix_matches_batch_construction() {
        let eps = rates(300);
        let ladder = PmfLadder::build(&eps);
        let mut out = PoiBin::empty();
        for c in [1, 63, 64, 65, 128, 200, 299] {
            ladder.prefix_into(&eps, c, &mut out);
            let want = PoiBin::from_error_rates(&eps[..c]);
            for k in 0..=c {
                assert!((out.prob_eq(k) - want.prob_eq(k)).abs() < 1e-10, "c={c} k={k}");
            }
        }
    }

    #[test]
    fn repair_update_tracks_moves_across_checkpoints() {
        let base = rates(400);
        // Move a value from deep inside the ladder to past its end, to a
        // different in-ladder rank, and in place.
        for (r_old, new_e) in [(10usize, 0.93), (300, 0.025), (40, 0.5 - 0.06), (70, 0.9)] {
            let mut eps = base.clone();
            let mut ladder = PmfLadder::build(&eps);
            let old_e = eps.remove(r_old);
            let r_new = eps.partition_point(|&e| e < new_e);
            eps.insert(r_new, new_e);
            assert!(ladder.repair_update(&eps, old_e, r_old, r_new));
            assert_ladder_close(&ladder, &eps, 1e-10);
        }
    }

    #[test]
    fn repair_remove_shrinks_and_tracks() {
        for r in [0usize, 63, 64, 130, 390] {
            let mut eps = rates(400);
            let mut ladder = PmfLadder::build(&eps);
            let old_e = eps.remove(r);
            assert!(ladder.repair_remove(&eps, old_e, r));
            assert_ladder_close(&ladder, &eps, 1e-10);
        }
        // Removing below a checkpoint boundary drops the top checkpoint
        // when the run shrinks past it.
        let mut eps = rates(128);
        let mut ladder = PmfLadder::build(&eps);
        assert_eq!(ladder.checkpoints.len(), 2);
        let old_e = eps.remove(5);
        assert!(ladder.repair_remove(&eps, old_e, 5));
        assert_eq!(ladder.checkpoints.len(), 1);
        assert_ladder_close(&ladder, &eps, 1e-10);
    }

    #[test]
    fn ill_conditioned_factor_falls_back_to_rebuild() {
        let mut eps = rates(200);
        eps[20] = 0.5; // exactly the degenerate factor
        eps.sort_by(f64::total_cmp);
        let mut ladder = PmfLadder::build(&eps);
        let r_old = eps.iter().position(|&e| e == 0.5).unwrap();
        let old_e = eps.remove(r_old);
        let r_new = eps.partition_point(|&e| e < 0.07);
        eps.insert(r_new, 0.07);
        assert!(!ladder.repair_update(&eps, old_e, r_old, r_new), "guard must trip");
        // The fallback rebuild is exact.
        assert_ladder_close(&ladder, &eps, f64::EPSILON);
    }
}
