//! Prefix-pmf checkpoint ladders with rescan-free repair.
//!
//! A [`PmfLadder`] materialises the Poisson-binomial distribution of the
//! `L` most reliable jurors of one ε-sorted run at checkpoint lengths
//! roughly every [`LADDER_SPACING`] jurors up to [`LADDER_MAX`], so a JER
//! point query resumes from the nearest checkpoint (`O(n·spacing)` pushes)
//! instead of rebuilding the prefix distribution from scratch. Both
//! layouts use it: each shard lays a ladder over its own sorted rates, and
//! flat pools lay one over the global ε order for
//! [`jer_probe`](crate::JuryService::jer_probe) and for resuming JER
//! *profile* repairs.
//!
//! The repair half is what makes juror mutations cheap:
//!
//! * **update / remove** — moving one sorted value changes each
//!   checkpoint's prefix *multiset* by at most one element, so
//!   [`PmfLadder::repair_update`] / [`PmfLadder::repair_remove`] patch
//!   every affected checkpoint with one factor division
//!   ([`PoiBin::remove_factor`] / [`PoiBin::replace_factor`]) plus at
//!   most one [`PoiBin::push`] — `O(L)` per checkpoint instead of the
//!   `O(L²)` rebuild — and fall back to a full rebuild when the
//!   division's conditioning guard trips (the juror's old rate within
//!   [`jury_numeric::poibin::DECONV_GUARD_BAND`] of ½, or the
//!   accumulated error budget exceeded).
//! * **insert** — a rank-insert only *adds* one element to each affected
//!   prefix, so [`PmfLadder::repair_insert`] needs one [`PoiBin::push`]
//!   per affected checkpoint and no deconvolution at all. The patched
//!   checkpoint then covers one more juror, which is why checkpoints
//!   carry explicit lengths instead of sitting at exact
//!   [`LADDER_SPACING`] multiples; when repeated inserts stretch any
//!   resume gap to twice the spacing, the gap is split with a freshly
//!   pushed midpoint checkpoint (amortised `O(L)` per insert).
//!
//! Deconvolution-repaired checkpoints are *numerically* (not bit-)
//! equal to rebuilt ones — exactly the
//! [`jer_probe`](crate::JuryService::jer_probe) contract, whose answers
//! stay within [`PROBE_REPAIR_TOL`] of a fresh evaluation. Insert
//! patches stay push-built but append the new factor out of ε-order, so
//! they share the same numerical (not bit-level) contract.

use jury_numeric::poibin::PoiBin;
use serde::{Deserialize, Error, Serialize, Value};

/// Target spacing between prefix-pmf checkpoints in a ladder. Repairs
/// let individual checkpoints drift off exact multiples; rebalancing
/// keeps every resume gap below `2 × LADDER_SPACING`.
pub(crate) const LADDER_SPACING: usize = 64;

/// Largest sorted-prefix length a ladder materialises checkpoints for.
/// Probes beyond the ladder fall back to a fresh batch construction —
/// optimal juries are small in practice, so the ladder covers the hot
/// range without `O(n²)` build cost on huge runs.
pub(crate) const LADDER_MAX: usize = 1024;

/// Documented bound on how far a deconvolution-repaired
/// [`jer_probe`](crate::JuryService::jer_probe) may drift from a fresh
/// evaluation over the same jurors (see the module docs; fresh paths
/// already agree only within convolution rounding).
pub const PROBE_REPAIR_TOL: f64 = 1e-8;

/// One materialised prefix distribution: the pmf of the `len` most
/// reliable jurors of the run.
#[derive(Debug, Clone)]
struct Checkpoint {
    len: usize,
    pmf: PoiBin,
}

/// The prefix-pmf checkpoint ladder of one ε-sorted run.
#[derive(Debug, Clone, Default)]
pub(crate) struct PmfLadder {
    /// Checkpoints ascending in `len`, each within `2 × LADDER_SPACING`
    /// of its neighbours (and of rank 0 / the coverage end).
    checkpoints: Vec<Checkpoint>,
}

impl PmfLadder {
    /// Lays the ladder over `eps` (ascending ε values) with sequential
    /// pushes — `O(min(len, LADDER_MAX)²)` once per cold run.
    pub(crate) fn build(eps: &[f64]) -> Self {
        let mut checkpoints = Vec::with_capacity(eps.len().min(LADDER_MAX) / LADDER_SPACING);
        let mut pmf = PoiBin::empty();
        for (i, &e) in eps.iter().take(LADDER_MAX).enumerate() {
            pmf.push(e);
            if (i + 1) % LADDER_SPACING == 0 {
                checkpoints.push(Checkpoint { len: i + 1, pmf: pmf.clone() });
            }
        }
        Self { checkpoints }
    }

    /// Index of the deepest checkpoint with `len ≤ c`, if any.
    fn resume_index(&self, c: usize) -> Option<usize> {
        match self.checkpoints.partition_point(|cp| cp.len <= c) {
            0 => None,
            i => Some(i - 1),
        }
    }

    /// The deepest checkpoint at or below prefix length `c`, as
    /// `(covered_len, pmf)` — the resume point for a JER-profile repair.
    pub(crate) fn resume_for(&self, c: usize) -> Option<(usize, &PoiBin)> {
        self.resume_index(c).map(|i| (self.checkpoints[i].len, &self.checkpoints[i].pmf))
    }

    /// The distribution of the `c` most reliable members of `eps`,
    /// resumed from the nearest checkpoint when one is close enough, else
    /// batch-built (adaptive DP/CBA).
    pub(crate) fn prefix_into(&self, eps: &[f64], c: usize, out: &mut PoiBin) {
        let resume = self.resume_index(c);
        let start = resume.map_or(0, |i| self.checkpoints[i].len);
        if c - start <= 2 * LADDER_SPACING {
            match resume {
                Some(i) => out.copy_from(&self.checkpoints[i].pmf),
                None => out.reset(),
            }
            for &e in &eps[start..c] {
                out.push(e);
            }
        } else {
            *out = PoiBin::from_error_rates(&eps[..c]);
        }
    }

    /// Repairs the ladder after one sorted value moved from rank `r_old`
    /// (where it held `old_e`) to rank `r_new`; `eps` is the
    /// **post-repair** sorted run (so the new value is `eps[r_new]`).
    /// Each checkpoint whose prefix multiset changed gets one factor
    /// division plus at most one push. Returns `false` when any division
    /// declined and the whole ladder was rebuilt instead.
    pub(crate) fn repair_update(
        &mut self,
        eps: &[f64],
        old_e: f64,
        r_old: usize,
        r_new: usize,
    ) -> bool {
        debug_assert!(
            self.checkpoints.last().is_none_or(|cp| cp.len <= eps.len()),
            "ladder must cover the run before a repair"
        );
        for cp in &mut self.checkpoints {
            let len = cp.len;
            let pmf = &mut cp.pmf;
            let patched = if r_old < len && r_new < len {
                // The moved value stayed inside this prefix.
                pmf.replace_factor(old_e, eps[r_new])
            } else if r_old < len {
                // Moved out: the value at the boundary slid in.
                pmf.remove_factor(old_e).map(|()| pmf.push(eps[len - 1]))
            } else if r_new < len {
                // Moved in: the old boundary value (now at `len`) slid out.
                pmf.remove_factor(eps[len]).map(|()| pmf.push(eps[r_new]))
            } else {
                Ok(())
            };
            if patched.is_err() {
                *self = Self::build(eps);
                return false;
            }
        }
        true
    }

    /// Repairs the ladder after the value `old_e` at rank `r` was removed
    /// from the run; `eps` is the **post-removal** sorted run. Returns
    /// `false` when a division declined and the ladder was rebuilt.
    pub(crate) fn repair_remove(&mut self, eps: &[f64], old_e: f64, r: usize) -> bool {
        // The run shrank: checkpoints beyond its new length vanish.
        self.checkpoints.retain(|cp| cp.len <= eps.len());
        for cp in &mut self.checkpoints {
            let len = cp.len;
            let pmf = &mut cp.pmf;
            if r < len && pmf.remove_factor(old_e).map(|()| pmf.push(eps[len - 1])).is_err() {
                *self = Self::build(eps);
                return false;
            }
        }
        true
    }

    /// Repairs the ladder after one value was rank-inserted at `r`;
    /// `eps` is the **post-insert** sorted run (so the new value is
    /// `eps[r]`). Every checkpoint whose prefix now contains the new
    /// value absorbs it with a single [`PoiBin::push`] — no
    /// deconvolution, so this repair cannot decline — growing its
    /// covered length by one. A checkpoint already at [`LADDER_MAX`]
    /// cannot absorb without breaching the coverage cap, so it is
    /// dropped instead (its prefix multiset changed, making the pmf
    /// stale); the rebalance pass then re-splits any resume gap
    /// stretched to twice the spacing, keeping per-repair cost and
    /// ladder memory bounded under sustained ingest.
    pub(crate) fn repair_insert(&mut self, eps: &[f64], r: usize) {
        self.checkpoints.retain_mut(|cp| {
            if r > cp.len {
                return true; // prefix untouched
            }
            if cp.len >= LADDER_MAX {
                // At the cap: a value landing strictly inside the prefix
                // makes the pmf stale (drop it — rebalance restores the
                // gap invariant); at rank == len the prefix is untouched
                // and the checkpoint simply stops growing.
                return r == cp.len;
            }
            cp.pmf.push(eps[r]);
            cp.len += 1;
            true
        });
        self.rebalance(eps);
    }

    /// Restores the gap invariant: between rank 0, consecutive
    /// checkpoints and the coverage end, every resume gap stays below
    /// `2 × LADDER_SPACING`. Oversized gaps are split by pushing a
    /// midpoint checkpoint forward from the lower neighbour — amortised
    /// `O(len)` per insert, since a gap only grows by one per insert.
    fn rebalance(&mut self, eps: &[f64]) {
        let limit = eps.len().min(LADDER_MAX);
        let mut i = 0usize;
        let mut prev_len = 0usize;
        loop {
            let next_len = match self.checkpoints.get(i) {
                Some(cp) => cp.len,
                None if prev_len < limit => limit,
                None => break,
            };
            if next_len - prev_len >= 2 * LADDER_SPACING {
                let mid = prev_len + LADDER_SPACING;
                let mut pmf = match i.checked_sub(1) {
                    Some(p) => self.checkpoints[p].pmf.clone(),
                    None => PoiBin::empty(),
                };
                for &e in &eps[prev_len..mid] {
                    pmf.push(e);
                }
                self.checkpoints.insert(i, Checkpoint { len: mid, pmf });
                // Re-examine from the new checkpoint: the remainder of
                // the gap may still be oversized.
            }
            prev_len = match self.checkpoints.get(i) {
                Some(cp) => cp.len,
                None => break,
            };
            i += 1;
        }
    }

    /// Raw checkpoints for the snapshot codec: `(len, pmf)` ascending in
    /// `len`.
    pub(crate) fn checkpoints_raw(&self) -> impl Iterator<Item = (usize, &PoiBin)> {
        self.checkpoints.iter().map(|cp| (cp.len, &cp.pmf))
    }

    /// Rebuilds a ladder from decoded checkpoints, re-validating the
    /// structural invariants every repair maintains — snapshot bytes are
    /// untrusted. Rejects non-ascending or zero lengths, lengths over
    /// [`LADDER_MAX`], and any pmf not covering exactly `len` trials.
    /// (Whether the pmf *values* match the run is the caller's gate —
    /// [`PoiBin::content_hash`] against the recorded hash.)
    pub(crate) fn from_checkpoints_raw(raw: Vec<(usize, PoiBin)>) -> Option<Self> {
        let mut prev = 0usize;
        for &(len, ref pmf) in &raw {
            if len <= prev || len > LADDER_MAX || pmf.n() != len {
                return None;
            }
            prev = len;
        }
        Some(Self {
            checkpoints: raw.into_iter().map(|(len, pmf)| Checkpoint { len, pmf }).collect(),
        })
    }
}

impl Serialize for PmfLadder {
    fn to_value(&self) -> Value {
        let checkpoints: Vec<Value> = self
            .checkpoints
            .iter()
            .map(|cp| {
                Value::object([
                    ("len", cp.len.to_value()),
                    ("pmf", cp.pmf.pmf().to_vec().to_value()),
                ])
            })
            .collect();
        Value::object([("checkpoints", Value::Array(checkpoints))])
    }
}

impl Deserialize for PmfLadder {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let Some(Value::Array(checkpoints)) = value.get("checkpoints") else {
            return Err(Error::expected("a ladder with a `checkpoints` array", value));
        };
        let mut raw = Vec::with_capacity(checkpoints.len());
        for cp in checkpoints {
            let len = usize::from_value(cp.get("len").ok_or_else(|| Error::missing_field("len"))?)?;
            let pmf =
                Vec::<f64>::from_value(cp.get("pmf").ok_or_else(|| Error::missing_field("pmf"))?)?;
            let pmf = PoiBin::try_from_pmf(pmf)
                .ok_or_else(|| Error::custom("checkpoint pmf is not a distribution"))?;
            raw.push((len, pmf));
        }
        Self::from_checkpoints_raw(raw)
            .ok_or_else(|| Error::custom("ladder checkpoints violate the length invariant"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(n: usize) -> Vec<f64> {
        let mut eps: Vec<f64> =
            (0..n).map(|i| 0.02 + 0.9 * ((i as f64 * 0.6180339887498949) % 1.0)).collect();
        eps.sort_by(f64::total_cmp);
        eps
    }

    fn assert_ladder_close(got: &PmfLadder, eps: &[f64], tol: f64) {
        let mut fresh = PoiBin::empty();
        for cp in &got.checkpoints {
            assert_eq!(cp.pmf.n(), cp.len);
            assert!(cp.len <= eps.len());
            fresh.assign_error_rates_dp(&eps[..cp.len]);
            for i in 0..=cp.len {
                assert!(
                    (cp.pmf.prob_eq(i) - fresh.prob_eq(i)).abs() < tol,
                    "checkpoint len {} entry {i}: {} vs {}",
                    cp.len,
                    cp.pmf.prob_eq(i),
                    fresh.prob_eq(i)
                );
            }
        }
        // The gap invariant must hold after every repair.
        let limit = eps.len().min(LADDER_MAX);
        let mut prev = 0usize;
        for cp in &got.checkpoints {
            assert!(cp.len > prev || prev == 0, "lengths ascending");
            assert!(cp.len - prev < 2 * LADDER_SPACING, "gap {prev}..{}", cp.len);
            prev = cp.len;
        }
        if limit > prev {
            assert!(limit - prev < 2 * LADDER_SPACING, "tail gap {prev}..{limit}");
        }
    }

    #[test]
    fn prefix_matches_batch_construction() {
        let eps = rates(300);
        let ladder = PmfLadder::build(&eps);
        let mut out = PoiBin::empty();
        for c in [1, 63, 64, 65, 128, 200, 299] {
            ladder.prefix_into(&eps, c, &mut out);
            let want = PoiBin::from_error_rates(&eps[..c]);
            for k in 0..=c {
                assert!((out.prob_eq(k) - want.prob_eq(k)).abs() < 1e-10, "c={c} k={k}");
            }
        }
    }

    #[test]
    fn repair_update_tracks_moves_across_checkpoints() {
        let base = rates(400);
        // Move a value from deep inside the ladder to past its end, to a
        // different in-ladder rank, and in place.
        for (r_old, new_e) in [(10usize, 0.93), (300, 0.025), (40, 0.5 - 0.06), (70, 0.9)] {
            let mut eps = base.clone();
            let mut ladder = PmfLadder::build(&eps);
            let old_e = eps.remove(r_old);
            let r_new = eps.partition_point(|&e| e < new_e);
            eps.insert(r_new, new_e);
            assert!(ladder.repair_update(&eps, old_e, r_old, r_new));
            assert_ladder_close(&ladder, &eps, 1e-10);
        }
    }

    #[test]
    fn repair_remove_shrinks_and_tracks() {
        for r in [0usize, 63, 64, 130, 390] {
            let mut eps = rates(400);
            let mut ladder = PmfLadder::build(&eps);
            let old_e = eps.remove(r);
            assert!(ladder.repair_remove(&eps, old_e, r));
            assert_ladder_close(&ladder, &eps, 1e-10);
        }
        // Removing below a checkpoint boundary drops the top checkpoint
        // when the run shrinks past it.
        let mut eps = rates(128);
        let mut ladder = PmfLadder::build(&eps);
        assert_eq!(ladder.checkpoints.len(), 2);
        let old_e = eps.remove(5);
        assert!(ladder.repair_remove(&eps, old_e, 5));
        assert_eq!(ladder.checkpoints.len(), 1);
        assert_ladder_close(&ladder, &eps, 1e-10);
    }

    #[test]
    fn repair_insert_pushes_and_keeps_gaps_bounded() {
        let mut eps = rates(300);
        let mut ladder = PmfLadder::build(&eps);
        // Hammer inserts at a low rank, a mid-gap rank and the far end;
        // gaps must stay bounded and every checkpoint must track.
        let mut state = 0x9e3779b97f4a7c15u64;
        for round in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let e = match round % 3 {
                0 => 0.021 + (state % 1000) as f64 * 1e-5, // low rank
                1 => 0.5 + (state % 1000) as f64 * 1e-5,   // mid run
                _ => 0.93 + (state % 1000) as f64 * 1e-5,  // far end
            };
            let r = eps.partition_point(|&x| x < e);
            eps.insert(r, e);
            ladder.repair_insert(&eps, r);
        }
        assert_ladder_close(&ladder, &eps, 1e-9);
        // prefix_into still agrees everywhere after the drift.
        let mut out = PoiBin::empty();
        for c in [1usize, 64, 129, 250, 400, 499] {
            ladder.prefix_into(&eps, c, &mut out);
            let want = PoiBin::from_error_rates(&eps[..c]);
            for k in 0..=c {
                assert!((out.prob_eq(k) - want.prob_eq(k)).abs() < 1e-9, "c={c} k={k}");
            }
        }
    }

    #[test]
    fn repair_insert_respects_the_coverage_cap() {
        // Sustained ingest into a run at the coverage cap must neither
        // grow any checkpoint past LADDER_MAX nor let the ladder's
        // memory track the insert count.
        let mut eps = rates(LADDER_MAX + 50);
        let mut ladder = PmfLadder::build(&eps);
        for i in 0..300 {
            let e = 0.02 + i as f64 * 1e-6; // lowest ranks: every checkpoint affected
            let r = eps.partition_point(|&x| x < e);
            eps.insert(r, e);
            ladder.repair_insert(&eps, r);
        }
        assert!(ladder.checkpoints.iter().all(|cp| cp.len <= LADDER_MAX));
        assert!(ladder.checkpoints.len() <= LADDER_MAX / LADDER_SPACING + 1);
        assert_ladder_close(&ladder, &eps, 1e-9);
    }

    #[test]
    fn repair_insert_on_short_run_grows_coverage() {
        // A run shorter than one spacing has no checkpoints; inserts
        // must create them once the run crosses the spacing boundary.
        let mut eps = rates(60);
        let mut ladder = PmfLadder::build(&eps);
        assert!(ladder.checkpoints.is_empty());
        for i in 0..140 {
            let e = 0.3 + i as f64 * 1e-4;
            let r = eps.partition_point(|&x| x < e);
            eps.insert(r, e);
            ladder.repair_insert(&eps, r);
        }
        assert!(!ladder.checkpoints.is_empty(), "coverage must grow with the run");
        assert_ladder_close(&ladder, &eps, 1e-10);
    }

    #[test]
    fn resume_for_returns_deepest_checkpoint() {
        let eps = rates(300);
        let ladder = PmfLadder::build(&eps);
        assert!(ladder.resume_for(10).is_none());
        let (len, pmf) = ladder.resume_for(100).unwrap();
        assert_eq!(len, 64);
        assert_eq!(pmf.n(), 64);
        let (len, _) = ladder.resume_for(128).unwrap();
        assert_eq!(len, 128);
        let (len, _) = ladder.resume_for(5000).unwrap();
        assert_eq!(len, 256);
    }

    #[test]
    fn ill_conditioned_factor_falls_back_to_rebuild() {
        let mut eps = rates(200);
        eps[20] = 0.5; // exactly the degenerate factor
        eps.sort_by(f64::total_cmp);
        let mut ladder = PmfLadder::build(&eps);
        let r_old = eps.iter().position(|&e| e == 0.5).unwrap();
        let old_e = eps.remove(r_old);
        let r_new = eps.partition_point(|&e| e < 0.07);
        eps.insert(r_new, 0.07);
        assert!(!ladder.repair_update(&eps, old_e, r_old, r_new), "guard must trip");
        // The fallback rebuild is exact — checkpoint for checkpoint it
        // carries the same bits as a fresh build (pinned via the stable
        // pmf content hash, the summary warm-artifact consumers compare).
        assert_ladder_close(&ladder, &eps, f64::EPSILON);
        let fresh = PmfLadder::build(&eps);
        assert_eq!(ladder.checkpoints.len(), fresh.checkpoints.len());
        for (a, b) in ladder.checkpoints.iter().zip(&fresh.checkpoints) {
            assert_eq!(a.len, b.len);
            assert_eq!(a.pmf.content_hash(), b.pmf.content_hash(), "len {}", a.len);
        }
    }

    mod wire_round_trip {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;
        use serde::json;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            // Encode → decode → encode is byte-identical, and a decoder
            // meeting a future writer's extra fields ignores them (the
            // snapshot restore path and `/stats` consumers rely on both).
            #[test]
            fn ladder_json_round_trips_and_decodes_lax(eps in vec(0.02..0.98f64, 1..=300)) {
                let mut eps = eps;
                eps.sort_by(f64::total_cmp);
                let ladder = PmfLadder::build(&eps);
                let text = json::to_string(&ladder);
                let back: PmfLadder = json::from_str(&text).unwrap();
                prop_assert_eq!(json::to_string(&back), text.clone());
                let lax = format!("{{\"future_field\": true, {}", &text[1..]);
                let back: PmfLadder = json::from_str(&lax).unwrap();
                prop_assert_eq!(json::to_string(&back), text);
            }
        }
    }
}
