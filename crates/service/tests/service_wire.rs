//! Wire round-trips for the service-level types that `/stats` and the
//! HTTP front-end's error envelope serve: [`ServiceStats`] snapshots
//! straight off a worked service, and every [`ServiceError`] variant.

use jury_core::error::JuryError;
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_service::{DecisionTask, JuryService, ServiceError, ServiceStats};
use serde::{json, Deserialize, Serialize};

fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: &T) {
    let text = json::to_string(value);
    let back: T = json::from_str(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
    assert_eq!(&back, value, "{text}");
}

#[test]
fn service_stats_round_trip() {
    // The zero snapshot and a snapshot with real counter activity both
    // survive the wire bit-exactly (`ServiceStats` is `Eq`, so equality
    // covers every field).
    round_trip(&ServiceStats::default());

    let jurors =
        pool_from_rates_and_costs(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4), (0.25, 0.3), (0.4, 0.6)])
            .unwrap();
    let mut service = JuryService::new();
    let a = service.create_pool(jurors.clone());
    let b = service.create_pool(jurors.clone());
    service.solve(&DecisionTask::altruism(a)).unwrap();
    service.solve(&DecisionTask::altruism(b)).unwrap();
    service.solve(&DecisionTask::pay_as_you_go(a, 0.7)).unwrap();
    service.update_juror(a, 0, Juror::new(9, ErrorRate::new(0.17).unwrap(), 0.2)).unwrap();
    let stats = service.stats();
    assert!(stats.tasks_solved > 0 && stats.artifact_share_hits > 0 && stats.cache_builds > 0);
    round_trip(&stats);

    // The follower-side gauges and adoption counters ride the same
    // wire: non-zero values survive bit-exactly.
    round_trip(&ServiceStats {
        follower_generation: 7,
        follower_lag_ms: 1_234,
        generations_adopted: 3,
        adoptions_rejected: 1,
        ..Default::default()
    });

    // Unknown counters from a newer peer are ignored; absent counters
    // read as zero (forward compatibility for `/stats` consumers).
    let lax: ServiceStats =
        json::from_str(r#"{"tasks_solved": 3, "counter_from_the_future": 9}"#).unwrap();
    assert_eq!(lax, ServiceStats { tasks_solved: 3, ..Default::default() });
    // A pre-failover peer that has never heard of the follower gauges
    // still parses — the new counters read as zero, not as an error.
    let lax: ServiceStats = json::from_str(r#"{"generations_adopted": 2}"#).unwrap();
    assert_eq!(lax, ServiceStats { generations_adopted: 2, ..Default::default() });
    assert!(json::from_str::<ServiceStats>("17").is_err(), "non-objects are refused");
}

#[test]
fn service_errors_round_trip() {
    // `PoolId`s are only minted by a service, so harvest real ones from
    // real failures.
    let mut service = JuryService::new();
    let jurors = pool_from_rates_and_costs(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4)]).unwrap();
    let pool = service.create_pool(jurors.clone());
    let removed = service.create_pool(jurors);
    service.remove_pool(removed).unwrap();
    let unknown = service.solve(&DecisionTask::altruism(removed)).unwrap_err();
    assert!(matches!(unknown, ServiceError::UnknownPool(_)));
    let out_of_range = service.remove_juror(pool, 99).unwrap_err();
    assert!(matches!(out_of_range, ServiceError::JurorOutOfRange { .. }));
    for err in [
        unknown,
        out_of_range,
        ServiceError::Solver(JuryError::EmptyPool),
        ServiceError::Solver(JuryError::NoFeasibleJury { budget: 0.125 }),
        ServiceError::Solver(JuryError::VotingSizeMismatch { expected: 5, actual: 2 }),
    ] {
        round_trip(&err);
    }
    assert!(json::from_str::<ServiceError>(r#"{"kind": "martian"}"#).is_err());
}
