//! Deterministic failover chaos harness.
//!
//! `shared_snapshot_faults.rs` reconstructs crash states by on-disk
//! surgery; this harness drives the *live protocol* through them with
//! the compiled-in [`FaultScheduler`]: a writer killed at every
//! filesystem-operation boundary of a commit, a garbage-collection
//! pass interrupted halfway, a stalled heartbeat, a promotion race
//! between two followers, and live generation adoption through the
//! wreckage.
//!
//! The invariants everywhere: **exactly one writer survives** any
//! race, **no generation is ever half-adopted** (a follower sees a
//! complete old generation or a complete new one, never a blend), and
//! every follower-served selection is **bit-identical** to a
//! never-failed control.

use jury_core::juror::{pool_from_rates_and_costs, Juror};
use jury_core::problem::Selection;
use jury_service::{
    DecisionTask, FaultAction, FaultPlane, FaultScheduler, JuryService, LeaseConfig, PoolId,
    ServiceConfig, SnapshotError, SnapshotWatcher,
};
use serde::json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------------
// Fixture plumbing (mirrors shared_snapshot_faults.rs)
// ---------------------------------------------------------------------

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("jury-failover-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn pool(n: usize) -> Vec<Juror> {
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let x = (i as f64 * 0.618_033_988_749_894_9).fract();
            (0.02 + 0.9 * x, 0.05 + ((i * 7 + 3) % 11) as f64 / 11.0)
        })
        .collect();
    pool_from_rates_and_costs(&pairs).unwrap()
}

/// Follower-side config: restore from `dir`, break stale leases after
/// `ttl`.
fn following(dir: &Path, ttl: Duration) -> ServiceConfig {
    ServiceConfig {
        snapshot_dir: Some(dir.to_path_buf()),
        lease: LeaseConfig { ttl },
        ..Default::default()
    }
}

type Outcome = Result<(Vec<usize>, u64, u64), String>;

fn footprint(result: Result<Selection, impl std::fmt::Display>) -> Outcome {
    result.map(|s| (s.members, s.jer.to_bits(), s.total_cost.to_bits())).map_err(|e| e.to_string())
}

/// Drives a task stream that populates every snapshot section.
fn drive(service: &mut JuryService, pool: PoolId) -> Vec<Outcome> {
    service.warm_pool(pool).unwrap();
    let mut out = Vec::new();
    out.push(footprint(service.solve(&DecisionTask::altruism(pool))));
    for budget in [0.4, 1.1, 2.7, 5.0] {
        for _ in 0..2 {
            out.push(footprint(service.solve(&DecisionTask::pay_as_you_go(pool, budget))));
        }
    }
    service.jer_profile(pool).unwrap();
    out
}

fn control(jurors: &[Juror]) -> Vec<Outcome> {
    let mut service = JuryService::new();
    let pool = service.create_pool(jurors.to_vec());
    drive(&mut service, pool)
}

fn extra_juror(salt: usize) -> Juror {
    pool_from_rates_and_costs(&[(0.15 + 0.013 * salt as f64, 0.25)]).unwrap().pop().unwrap()
}

/// Dirties `pool` the way live churn does and returns the mutated
/// content (warming a twin so the new content is interned in the
/// shared store — the entry the next commit persists).
fn dirty(service: &mut JuryService, pool: PoolId, salt: usize) -> Vec<Juror> {
    service.insert_juror(pool, extra_juror(salt)).unwrap();
    service.warm_pool(pool).unwrap();
    let mutated = service.pool(pool).unwrap().to_vec();
    let twin = service.create_pool(mutated.clone());
    service.warm_pool(twin).unwrap();
    mutated
}

fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_millis() as u64
}

fn manifests(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("manifest-") && n.ends_with(".json"))
        })
        .collect();
    out.sort();
    out
}

fn lease_fields(dir: &Path) -> (String, u64, u64) {
    let value = json::parse(&fs::read_to_string(dir.join("writer.lease")).unwrap()).unwrap();
    let holder = value.get("holder").unwrap().as_str().unwrap().to_string();
    let epoch = u64::from_str_radix(value.get("epoch").unwrap().as_str().unwrap(), 16).unwrap();
    let heartbeat =
        u64::from_str_radix(value.get("heartbeat_ms").unwrap().as_str().unwrap(), 16).unwrap();
    (holder, epoch, heartbeat)
}

fn forge_lease(dir: &Path, holder: &str, epoch: u64, heartbeat_ms: u64) {
    fs::write(
        dir.join("writer.lease"),
        format!(
            r#"{{"format":"jury-lease","holder":"{holder}","epoch":"{epoch:016x}","heartbeat_ms":"{heartbeat_ms:016x}"}}"#
        ),
    )
    .unwrap();
}

/// Sleeps until the on-disk lease heartbeat is more than one `ttl` in
/// the past — the deterministic "one lease TTL after the writer died"
/// moment, anchored on the heartbeat the dead writer actually wrote
/// rather than on test-side sleeps.
fn wait_past_ttl(dir: &Path, ttl: Duration) {
    let (_, _, heartbeat) = lease_fields(dir);
    let deadline = heartbeat + ttl.as_millis() as u64 + 25;
    while now_ms() <= deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------
// Writer killed at every commit boundary → follower promotes
// ---------------------------------------------------------------------

/// Runs the canonical two-commit writer scenario against `dir`: commit
/// generation 1, churn the pool, attempt generation 2 under `sched`.
/// Returns the mutated content and the second commit's outcome.
fn two_commit_writer(
    dir: &Path,
    jurors: &[Juror],
    sched: &Arc<FaultScheduler>,
) -> (JuryService, Vec<Juror>, Result<u64, SnapshotError>) {
    let mut writer = JuryService::new();
    let pa = writer.create_pool(jurors.to_vec());
    drive(&mut writer, pa);
    writer.set_snapshot_fault_plane(Arc::clone(sched) as Arc<dyn FaultPlane>);
    assert_eq!(writer.snapshot(dir).expect("generation 1 commits cleanly").generation, 1);
    let mutated = dirty(&mut writer, pa, 0);
    let second = writer.snapshot(dir).map(|r| r.generation);
    (writer, mutated, second)
}

/// The acceptance sweep: a writer killed at **every** filesystem
/// operation of an incremental commit (entry writes, lease refresh,
/// fence, manifest rename, GC) leaves a directory from which a
/// follower serves bit-identical answers for whichever generation
/// durably committed — never a blend — and promotes to writer within
/// one lease TTL of the victim's last heartbeat.
#[test]
fn writer_killed_at_every_commit_op_leaves_a_promotable_directory() {
    let jurors = pool(16);
    let ttl = Duration::from_millis(60);

    // Learning run: count the operations of each commit un-armed.
    let learn = TempDir::new("sweep-learn");
    let sched = Arc::new(FaultScheduler::new());
    {
        let mut writer = JuryService::new();
        let pa = writer.create_pool(jurors.clone());
        drive(&mut writer, pa);
        writer.set_snapshot_fault_plane(Arc::clone(&sched) as Arc<dyn FaultPlane>);
        writer.snapshot(learn.path()).unwrap();
    }
    let first_commit_ops = sched.ops_seen();
    let (_, expected_mutated, second) = {
        let rerun = TempDir::new("sweep-learn2");
        let sched = Arc::new(FaultScheduler::new());
        let out = two_commit_writer(rerun.path(), &jurors, &sched);
        assert!(sched.ops_seen() > first_commit_ops);
        (sched.ops_seen(), out.1, out.2)
    };
    let total_ops = {
        let rerun = TempDir::new("sweep-learn3");
        let sched = Arc::new(FaultScheduler::new());
        let (_, _, committed) = two_commit_writer(rerun.path(), &jurors, &sched);
        committed.expect("the un-faulted learning run commits");
        sched.ops_seen()
    };
    assert_eq!(second.unwrap(), 2, "the un-faulted scenario commits generation 2");
    assert!(total_ops > first_commit_ops, "the second commit must consult the plane");

    let cold = control(&jurors);
    let mutated_control = control(&expected_mutated);

    for k in first_commit_ops..total_ops {
        let tmp = TempDir::new(&format!("sweep-{k}"));
        let sched = Arc::new(FaultScheduler::new());
        sched.arm(k, FaultAction::Kill);
        let (mut victim, mutated, second) = two_commit_writer(tmp.path(), &jurors, &sched);
        assert!(sched.is_killed(), "the kill at op {k} must fire");
        assert_eq!(mutated, expected_mutated, "churn is deterministic across runs");
        if let Ok(generation) = &second {
            // A kill that lands inside the (post-commit, best-effort)
            // GC pass still returns a committed generation 2.
            assert_eq!(*generation, 2, "an Ok outcome at kill op {k} means the commit landed");
        }

        // A follower over the wreckage: whichever generation durably
        // committed serves bit-identically; no blend, no rejection.
        let mut follower = JuryService::with_config(following(tmp.path(), ttl));
        let restored_gen = follower.stats().snapshot_generation;
        assert!(
            restored_gen == 1 || restored_gen == 2,
            "kill at op {k}: generation must be all-old or all-new, got {restored_gen}"
        );
        if second.is_ok() {
            assert_eq!(restored_gen, 2, "kill at op {k}: a committed generation must be visible");
        }
        let fa = follower.create_pool(jurors.clone());
        let fb = follower.create_pool(expected_mutated.clone());
        assert_eq!(drive(&mut follower, fa), cold, "kill at op {k}: original content diverged");
        assert_eq!(drive(&mut follower, fb), mutated_control, "kill at op {k}: churned content");
        assert_eq!(
            follower.stats().snapshot_rejections,
            0,
            "kill at op {k}: a committed generation never references missing bytes"
        );

        // Promotion within one TTL of the victim's last heartbeat: the
        // first probe past expiry must take the lease.
        wait_past_ttl(tmp.path(), ttl);
        follower
            .snapshot(tmp.path())
            .unwrap_or_else(|e| panic!("kill at op {k}: first post-ttl probe refused: {e}"));
        let (holder, _, _) = lease_fields(tmp.path());
        assert_eq!(holder, follower.snapshot_holder(), "kill at op {k}: lease names the follower");

        // Exactly one writer survives: the victim's plane is poisoned
        // (a dead process never returns), so it can never commit.
        assert!(victim.snapshot(tmp.path()).is_err(), "kill at op {k}: the victim stays dead");
    }
}

// ---------------------------------------------------------------------
// Stalled heartbeat → promotion within one TTL, zombie fenced
// ---------------------------------------------------------------------

/// A writer whose heartbeat stalls (no checkpoints past the ttl) is
/// promoted over by a follower within one lease TTL; when the stalled
/// writer wakes and tries to commit it is fenced and the directory is
/// untouched.
#[test]
fn stalled_writer_is_superseded_within_one_ttl_and_fenced_on_wakeup() {
    let tmp = TempDir::new("stall");
    let jurors = pool(18);
    let ttl = Duration::from_millis(150);

    let mut writer = JuryService::with_config(ServiceConfig {
        lease: LeaseConfig { ttl },
        ..Default::default()
    });
    let wp = writer.create_pool(jurors.clone());
    drive(&mut writer, wp);
    let committed = Instant::now();
    writer.snapshot(tmp.path()).unwrap();

    let mut follower = JuryService::with_config(following(tmp.path(), ttl));
    let fp = follower.create_pool(jurors.clone());
    assert_eq!(drive(&mut follower, fp), control(&jurors));
    assert_eq!(follower.stats().snapshot_restores, 1);

    // While the writer's heartbeat is live the follower is refused.
    match follower.snapshot(tmp.path()) {
        Err(SnapshotError::LeaseHeld { holder, .. }) => {
            assert_eq!(holder, writer.snapshot_holder(), "the refusal names the live writer");
        }
        Ok(_) => assert!(
            committed.elapsed() > ttl,
            "a probe inside the ttl must never break a live lease"
        ),
        other => panic!("expected LeaseHeld, got {other:?}"),
    }

    // One TTL after the last heartbeat the very next probe promotes.
    wait_past_ttl(tmp.path(), ttl);
    follower.snapshot(tmp.path()).expect("first post-ttl probe must promote");
    let (holder, epoch, _) = lease_fields(tmp.path());
    assert_eq!(holder, follower.snapshot_holder());
    assert_eq!(epoch, 2, "promotion bumps the epoch past the stalled writer's");

    // The stalled writer wakes up with churned state and tries to
    // commit: fenced, and nothing it did reaches the directory.
    let before = manifests(tmp.path());
    dirty(&mut writer, wp, 1);
    match writer.snapshot(tmp.path()) {
        Err(SnapshotError::Fenced { ours, winner }) => {
            assert_eq!(ours, 1, "the zombie believed epoch 1");
            assert_eq!(winner, 2, "fenced by the promoted follower's epoch");
        }
        other => panic!("expected Fenced, got {other:?}"),
    }
    assert_eq!(manifests(tmp.path()), before, "a fenced zombie publishes nothing");
    assert_eq!(lease_fields(tmp.path()).0, follower.snapshot_holder(), "the lease is untouched");
}

// ---------------------------------------------------------------------
// Promotion race between two followers
// ---------------------------------------------------------------------

/// Two followers discover the same stale lease and race to break it in
/// parallel. The verified steal guarantees exactly one acquires; the
/// loser is told who won and a reader restores the winner's commit
/// bit-identically.
#[test]
fn promotion_race_between_two_followers_elects_exactly_one_writer() {
    let jurors = pool(16);
    for round in 0..8 {
        let tmp = TempDir::new(&format!("promo-race-{round}"));
        let mut seeder = JuryService::new();
        let sp = seeder.create_pool(jurors.clone());
        drive(&mut seeder, sp);
        seeder.snapshot(tmp.path()).unwrap();
        forge_lease(tmp.path(), "dead-writer", 3, now_ms().saturating_sub(120_000));

        let candidate = |salt: usize| {
            let mut s = JuryService::new();
            let p = s.create_pool(jurors.clone());
            drive(&mut s, p);
            let mutated = dirty(&mut s, p, salt);
            (s, mutated)
        };
        let (mut a, mutated_a) = candidate(2 * round);
        let (mut b, mutated_b) = candidate(2 * round + 1);

        let barrier = Barrier::new(2);
        let (result_a, result_b) = std::thread::scope(|scope| {
            let dir = tmp.path();
            let gate = &barrier;
            let a = &mut a;
            let b = &mut b;
            let ha = scope.spawn(move || {
                gate.wait();
                a.snapshot(dir).map(|r| r.generation)
            });
            let hb = scope.spawn(move || {
                gate.wait();
                b.snapshot(dir).map(|r| r.generation)
            });
            (ha.join().expect("candidate A panicked"), hb.join().expect("candidate B panicked"))
        });

        let winners = usize::from(result_a.is_ok()) + usize::from(result_b.is_ok());
        assert_eq!(
            winners, 1,
            "round {round}: exactly one candidate may win the break \
             (a={result_a:?}, b={result_b:?})"
        );
        let (winner_holder, winner_content, loser) = if result_a.is_ok() {
            (a.snapshot_holder().to_string(), &mutated_a, &result_b)
        } else {
            (b.snapshot_holder().to_string(), &mutated_b, &result_a)
        };
        assert!(
            matches!(
                loser,
                Err(SnapshotError::LeaseHeld { .. }) | Err(SnapshotError::Fenced { .. })
            ),
            "round {round}: the loser backs off cleanly, got {loser:?}"
        );
        let (holder, epoch, _) = lease_fields(tmp.path());
        assert_eq!(holder, winner_holder, "round {round}: the lease names the winner");
        // Epoch 4 when the winner broke the stale lease directly
        // (max(stale 3, floor 1) + 1); epoch 2 when it slipped in on a
        // `Missing` read after the rival's steal (floor 1 + 1). Either
        // way the committed floor is cleared and there is one holder.
        assert!(epoch == 2 || epoch == 4, "round {round}: unexpected winning epoch {epoch}");

        // The winner's generation 2 is the one readers see — complete,
        // verified, bit-identical to the winner's own content.
        let mut reader = JuryService::with_config(following(tmp.path(), Duration::from_secs(30)));
        assert_eq!(reader.stats().snapshot_generation, 2, "round {round}");
        let rp = reader.create_pool(winner_content.clone());
        assert_eq!(drive(&mut reader, rp), control(winner_content), "round {round}");
        assert_eq!(reader.stats().snapshot_rejections, 0, "round {round}");
    }
}

// ---------------------------------------------------------------------
// Adoption during an interrupted GC
// ---------------------------------------------------------------------

/// Kills the plane at the first occurrence of one named operation —
/// the trait-level injection point the scheduler's index-based sweep
/// can't target directly.
#[derive(Debug)]
struct KillOnOp {
    target: &'static str,
    killed: AtomicBool,
}

impl KillOnOp {
    fn new(target: &'static str) -> Self {
        Self { target, killed: AtomicBool::new(false) }
    }
}

impl FaultPlane for KillOnOp {
    fn before(&self, op: &str) -> io::Result<()> {
        if self.killed.load(Ordering::SeqCst) || op == self.target {
            self.killed.store(true, Ordering::SeqCst);
            return Err(io::Error::other(format!("killed at first {}", self.target)));
        }
        Ok(())
    }
}

/// A writer that dies at the first GC unlink leaves *both* generations
/// on disk; a live follower's watcher announces the new one and
/// adoption hot-swaps it — counter-gated, without restart, serving
/// both the old and the churned content bit-identically.
#[test]
fn follower_adopts_through_an_interrupted_gc() {
    let tmp = TempDir::new("gc-adopt");
    let jurors = pool(16);

    let mut writer = JuryService::new();
    let wp = writer.create_pool(jurors.clone());
    drive(&mut writer, wp);
    let plane = Arc::new(KillOnOp::new("gc.unlink"));
    writer.set_snapshot_fault_plane(Arc::clone(&plane) as Arc<dyn FaultPlane>);
    writer.snapshot(tmp.path()).unwrap();
    assert!(!plane.killed.load(Ordering::SeqCst), "a fresh directory has nothing to collect");

    // A live follower on generation 1, watch seeded like the
    // supervisor seeds it.
    let mut follower = JuryService::with_config(following(tmp.path(), Duration::from_millis(60)));
    let fp = follower.create_pool(jurors.clone());
    assert_eq!(drive(&mut follower, fp), control(&jurors));
    let mut watcher = SnapshotWatcher::new(tmp.path(), Duration::from_millis(5));
    watcher.observe(follower.stats().follower_generation as u64);

    // Generation 2 commits, then the GC pass is killed on its first
    // unlink: the commit stands, the old generation lingers.
    let mutated = dirty(&mut writer, wp, 0);
    let report = writer.snapshot(tmp.path()).unwrap();
    assert_eq!(report.generation, 2, "the commit precedes (and survives) the GC kill");
    assert!(plane.killed.load(Ordering::SeqCst), "the GC pass was interrupted");
    assert_eq!(manifests(tmp.path()).len(), 2, "both generations linger mid-GC");

    // The watch announces the commit; adoption swaps it in live.
    assert_eq!(watcher.poll(), Some(2), "the interrupted GC must not hide the commit");
    let adopted = follower.adopt_snapshot().expect("adoption through GC debris must succeed");
    assert_eq!(adopted.generation, 2);
    assert_eq!(adopted.rejected, 0);
    watcher.observe(adopted.generation);
    assert_eq!(watcher.poll(), None, "the adopted generation settles the watch");

    let stats = follower.stats();
    assert_eq!(stats.generations_adopted, 1);
    assert_eq!(stats.adoptions_rejected, 0);
    assert_eq!(stats.follower_generation, 2);

    // The already-warm pool keeps its answers; the churned content
    // warms straight from the adopted generation.
    let restores_before = follower.stats().snapshot_restores;
    let ft = follower.create_pool(mutated.clone());
    assert_eq!(drive(&mut follower, ft), control(&mutated));
    assert_eq!(
        follower.stats().snapshot_restores,
        restores_before + 1,
        "the churned content restores from the adopted generation"
    );
}

// ---------------------------------------------------------------------
// Live adoption without restart (counter-gated acceptance)
// ---------------------------------------------------------------------

/// The tentpole acceptance: a follower adopts each new generation into
/// the live service — `generations_adopted` advances, cold pools
/// pre-warm from the adopted bytes, warm pools are untouched, and a
/// re-poll adopts nothing until the writer commits again.
#[test]
fn follower_adopts_each_generation_without_restart() {
    let tmp = TempDir::new("live-adopt");
    let jurors_a = pool(16);
    let jurors_b = pool(17);

    let mut writer = JuryService::new();
    let wa = writer.create_pool(jurors_a.clone());
    drive(&mut writer, wa);
    writer.snapshot(tmp.path()).unwrap();

    let mut follower = JuryService::with_config(following(tmp.path(), Duration::from_millis(60)));
    let fa = follower.create_pool(jurors_a.clone());
    assert_eq!(drive(&mut follower, fa), control(&jurors_a));
    assert_eq!(follower.stats().snapshot_restores, 1);
    let mut watcher = SnapshotWatcher::new(tmp.path(), Duration::from_millis(5));
    watcher.observe(follower.stats().follower_generation as u64);
    assert_eq!(watcher.poll(), None, "nothing newer than the restored generation");
    assert!(follower.adopt_snapshot().is_none(), "adoption is generation-gated");

    // The follower registers the second pool *before* any commit
    // carries it: a cold pool waiting for bytes.
    let fb = follower.create_pool(jurors_b.clone());

    // The writer commits generation 2 with the second pool's content.
    let wb = writer.create_pool(jurors_b.clone());
    drive(&mut writer, wb);
    assert_eq!(writer.snapshot(tmp.path()).unwrap().generation, 2);

    // Watch → adopt: the cold pool pre-warms from the adopted bytes.
    assert_eq!(watcher.poll(), Some(2));
    let adopted = follower.adopt_snapshot().expect("a newer generation must adopt");
    assert_eq!(adopted.generation, 2);
    assert_eq!(adopted.restored, 1, "the cold pool pre-warms during adoption");
    assert_eq!(adopted.rejected, 0);
    watcher.observe(adopted.generation);

    let stats = follower.stats();
    assert_eq!(stats.generations_adopted, 1, "adoption is counter-gated");
    assert_eq!(stats.adoptions_rejected, 0);
    assert_eq!(stats.follower_generation, 2);
    assert_eq!(stats.snapshot_restores, 2, "restart never happened; the restore was live");

    // Both pools serve bit-identically after the hot swap.
    assert_eq!(drive(&mut follower, fb), control(&jurors_b));
    assert_eq!(drive(&mut follower, fa), control(&jurors_a));

    // Quiet directory: the watch settles, adoption stays refused.
    assert_eq!(watcher.poll(), None);
    assert!(follower.adopt_snapshot().is_none());
    assert_eq!(follower.stats().generations_adopted, 1, "no double-count on a quiet directory");
}

// ---------------------------------------------------------------------
// Satellite: backwards-clock tolerance
// ---------------------------------------------------------------------

/// A forged lease whose heartbeat is stamped in the *future* (the
/// wall clock stepped backwards since the holder wrote it) must read
/// as live — age clamps to zero — and can never be broken, no matter
/// how long the candidate waits relative to its own clock.
#[test]
fn future_dated_heartbeat_reads_live_and_is_never_broken() {
    let tmp = TempDir::new("future-heartbeat");
    let jurors = pool(16);

    let mut seeder = JuryService::new();
    let sp = seeder.create_pool(jurors.clone());
    drive(&mut seeder, sp);
    seeder.snapshot(tmp.path()).unwrap();

    // A holder whose heartbeat claims to be a minute in the future.
    forge_lease(tmp.path(), "time-traveler", 5, now_ms() + 60_000);
    let lease_before = fs::read(tmp.path().join("writer.lease")).unwrap();

    let mut candidate = JuryService::with_config(ServiceConfig {
        lease: LeaseConfig { ttl: Duration::from_millis(1) },
        ..Default::default()
    });
    let cp = candidate.create_pool(jurors.clone());
    drive(&mut candidate, cp);
    dirty(&mut candidate, cp, 0);
    std::thread::sleep(Duration::from_millis(10));
    match candidate.snapshot(tmp.path()) {
        Err(SnapshotError::LeaseHeld { holder, age_ms }) => {
            assert_eq!(holder, "time-traveler");
            assert_eq!(age_ms, 0, "a future heartbeat clamps to age zero, never underflows");
        }
        other => panic!("a future-dated lease must refuse the candidate, got {other:?}"),
    }
    assert_eq!(
        fs::read(tmp.path().join("writer.lease")).unwrap(),
        lease_before,
        "the refused candidate leaves the lease byte-identical"
    );
    assert_eq!(manifests(tmp.path()).len(), 1, "nothing was committed over the holder");
}

// ---------------------------------------------------------------------
// Satellite: adversarial manifest names
// ---------------------------------------------------------------------

/// Restore, the writer's scan, the watch, and adoption must all skip —
/// never panic on — adversarial directory contents: empty and non-hex
/// generation fields, digit strings that overflow `u64`, and
/// *directories* named like manifests.
#[test]
fn adversarial_manifest_names_are_skipped_without_panicking() {
    let tmp = TempDir::new("adversarial-names");
    let jurors = pool(16);

    let mut writer = JuryService::new();
    let wp = writer.create_pool(jurors.clone());
    drive(&mut writer, wp);
    writer.snapshot(tmp.path()).unwrap();

    let mut follower = JuryService::with_config(following(tmp.path(), Duration::from_millis(60)));
    let fp = follower.create_pool(jurors.clone());
    assert_eq!(drive(&mut follower, fp), control(&jurors));
    let mut watcher = SnapshotWatcher::new(tmp.path(), Duration::from_millis(5));
    watcher.observe(follower.stats().follower_generation as u64);

    // The adversarial zoo.
    fs::write(tmp.path().join("manifest-.json"), b"{}").unwrap();
    fs::write(tmp.path().join("manifest-ffffffffffffffffffff.json"), b"{}").unwrap();
    fs::write(tmp.path().join("manifest-xyz.json"), b"not json either").unwrap();
    fs::write(tmp.path().join("manifest-99999999999999999999999.json"), b"{}").unwrap();
    fs::create_dir(tmp.path().join("manifest-7.json")).unwrap();
    fs::write(tmp.path().join("manifest-7.json").join("inner"), b"directory, not a file").unwrap();

    // A cold restore through the zoo lands on the real generation.
    let mut reader = JuryService::with_config(following(tmp.path(), Duration::from_millis(60)));
    let rp = reader.create_pool(jurors.clone());
    assert_eq!(drive(&mut reader, rp), control(&jurors), "the zoo must not change answers");
    let stats = reader.stats();
    assert_eq!(stats.snapshot_restores, 1);
    assert_eq!(stats.snapshot_generation, 1, "only the real manifest counts");

    // The name-only watch announces the directory named `manifest-7`
    // (it cannot know better without opening files) — but adoption
    // stays generation-gated on what actually parses, so it refuses
    // and the announcement repeats instead of half-adopting.
    assert_eq!(watcher.poll(), Some(7), "name-only scan sees the fake");
    assert!(follower.adopt_snapshot().is_none(), "nothing real is newer: adoption refused");
    assert_eq!(follower.stats().generations_adopted, 0);
    assert_eq!(watcher.poll(), Some(7), "an unadoptable announcement is repeated, not dropped");

    // The writer's next commit scans past the zoo and lands generation
    // 2 — which the follower then adopts through the same debris.
    let mutated = dirty(&mut writer, wp, 0);
    assert_eq!(writer.snapshot(tmp.path()).unwrap().generation, 2, "the writer skips the zoo");
    assert!(watcher.poll().is_some());
    let adopted = follower.adopt_snapshot().expect("the real commit adopts through the zoo");
    assert_eq!(adopted.generation, 2);
    let ft = follower.create_pool(mutated.clone());
    assert_eq!(drive(&mut follower, ft), control(&mutated));
}
