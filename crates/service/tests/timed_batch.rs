//! The per-task timing hook: `solve_batch_shared_timed` must fill one
//! solver duration per task on every internal path (inline small-batch,
//! single-thread prewarmed, and the scoped worker fan-out) while
//! returning answers bit-identical to the untimed entry point.

use jury_core::juror::pool_from_rates_and_costs;
use jury_core::problem::Selection;
use jury_service::{DecisionTask, JuryService, ServiceConfig, ServiceError};
use std::sync::Arc;
use std::time::Duration;

fn build_service(threads: usize) -> (JuryService, Vec<DecisionTask>) {
    let pairs: Vec<(f64, f64)> =
        (0..25).map(|i| (0.05 + (i as f64) / 30.0, 0.1 + ((i * 7) % 5) as f64 / 5.0)).collect();
    let jurors = pool_from_rates_and_costs(&pairs).unwrap();
    let mut service = JuryService::with_config(ServiceConfig { threads, ..Default::default() });
    let a = service.create_pool(jurors.clone());
    let b = service.create_pool(jurors);
    let tasks: Vec<DecisionTask> = (0..64)
        .map(|i| {
            let pool = if i % 2 == 0 { a } else { b };
            if i % 3 == 0 {
                DecisionTask::altruism(pool)
            } else {
                DecisionTask::pay_as_you_go(pool, 0.4 + (i % 5) as f64 * 0.3)
            }
        })
        .collect();
    (service, tasks)
}

fn assert_bit_identical(
    timed: &[Result<Arc<Selection>, ServiceError>],
    untimed: &[Result<Arc<Selection>, ServiceError>],
) {
    assert_eq!(timed.len(), untimed.len());
    for (t, u) in timed.iter().zip(untimed) {
        match (t, u) {
            (Ok(t), Ok(u)) => {
                assert_eq!(t.members, u.members);
                assert_eq!(t.jer.to_bits(), u.jer.to_bits());
                assert_eq!(t.total_cost.to_bits(), u.total_cost.to_bits());
            }
            (t, u) => assert_eq!(t, u),
        }
    }
}

fn exercise(threads: usize, batch: usize) {
    let (mut timed_service, tasks) = build_service(threads);
    let mut untimed_service = timed_service.clone();
    let tasks = &tasks[..batch];

    // A dirty buffer must come back cleared and exactly batch-sized.
    let mut timings = vec![Duration::from_secs(999); 3];
    let timed = timed_service.solve_batch_shared_timed(tasks, &mut timings);
    let untimed = untimed_service.solve_batch_shared(tasks);

    assert_bit_identical(&timed, &untimed);
    assert_eq!(timings.len(), tasks.len());
    assert!(timings.iter().all(|d| *d < Duration::from_secs(1)), "stale entries survived");
    let total: Duration = timings.iter().sum();
    assert!(total > Duration::ZERO, "no path recorded any solver time");
}

#[test]
fn timed_batches_cover_every_dispatch_path() {
    exercise(1, 4); // inline small-batch path
    exercise(1, 64); // prewarmed single-thread path
    exercise(2, 64); // scoped worker fan-out (two chunks of 32)
}

#[test]
fn timed_batches_report_failures_positionally() {
    let (mut service, mut tasks) = build_service(1);
    let doomed = service.create_pool(pool_from_rates_and_costs(&[(0.2, 0.1)]).unwrap());
    service.remove_pool(doomed).unwrap();
    tasks[5] = DecisionTask::altruism(doomed);
    let mut timings = Vec::new();
    let out = service.solve_batch_shared_timed(&tasks, &mut timings);
    assert_eq!(out[5], Err(ServiceError::UnknownPool(doomed)));
    assert_eq!(timings.len(), tasks.len());
    assert!(out.iter().enumerate().all(|(i, r)| i == 5 || r.is_ok()));
}
