//! Multi-process fault harness for the shared snapshot directory.
//!
//! Several services pointed at one directory: a single writer holds the
//! advisory lease and commits incremental generation manifests; every
//! other process restores read-only from the highest durable
//! generation. This harness simulates the interleavings that protocol
//! must survive — writer dies between entry write and manifest commit,
//! lease-holder dies without releasing, a reader opens mid-GC, an
//! epoch-fenced zombie writer — using two (or more) [`JuryService`]s
//! over one directory in-process, plus on-disk surgery for the crash
//! states.
//!
//! The invariant everywhere: **bit-identical selections** versus a
//! never-snapshotted control, zero wrong answers, zero hard errors
//! (cold-build fallback only), and exact counter deltas.

use jury_core::juror::{pool_from_rates_and_costs, Juror};
use jury_core::problem::Selection;
use jury_service::{DecisionTask, JuryService, PoolId, ServiceConfig, SnapshotError};
use serde::json;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------------
// Fixture plumbing
// ---------------------------------------------------------------------

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("jury-shared-snap-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn pool(n: usize) -> Vec<Juror> {
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let x = (i as f64 * 0.618_033_988_749_894_9).fract();
            (0.02 + 0.9 * x, 0.05 + ((i * 7 + 3) % 11) as f64 / 11.0)
        })
        .collect();
    pool_from_rates_and_costs(&pairs).unwrap()
}

fn reading(dir: &Path) -> ServiceConfig {
    ServiceConfig { snapshot_dir: Some(dir.to_path_buf()), ..Default::default() }
}

type Outcome = Result<(Vec<usize>, u64, u64), String>;

fn footprint(result: Result<Selection, impl std::fmt::Display>) -> Outcome {
    result.map(|s| (s.members, s.jer.to_bits(), s.total_cost.to_bits())).map_err(|e| e.to_string())
}

/// Drives a task stream that populates every snapshot section, plus
/// `extra_budgets` PayM solves (the knob the dirty-tracking tests turn).
fn drive(service: &mut JuryService, pool: PoolId, extra_budgets: &[f64]) -> Vec<Outcome> {
    service.warm_pool(pool).unwrap();
    let mut out = Vec::new();
    out.push(footprint(service.solve(&DecisionTask::altruism(pool))));
    for budget in [0.4, 1.1, 2.7, 5.0] {
        for _ in 0..2 {
            out.push(footprint(service.solve(&DecisionTask::pay_as_you_go(pool, budget))));
        }
    }
    service.jer_profile(pool).unwrap();
    for &budget in extra_budgets {
        out.push(footprint(service.solve(&DecisionTask::pay_as_you_go(pool, budget))));
    }
    out
}

fn control(jurors: &[Juror], extra_budgets: &[f64]) -> Vec<Outcome> {
    let mut service = JuryService::new();
    let pool = service.create_pool(jurors.to_vec());
    drive(&mut service, pool, extra_budgets)
}

fn extra_juror(salt: usize) -> Juror {
    pool_from_rates_and_costs(&[(0.15 + 0.013 * salt as f64, 0.25)]).unwrap().pop().unwrap()
}

/// Dirties `pool` the way live churn does — a juror joins, the warm set
/// is repaired in place under the pool's new content fingerprint — and
/// returns the mutated juror list (the content a control must use).
/// A mutated sole-owner pool stays *private* (only shared store entries
/// persist), so a fresh twin pool over the mutated content is warmed to
/// intern it — the same path a second tenant of the new content takes.
fn dirty(service: &mut JuryService, pool: PoolId, salt: usize) -> Vec<Juror> {
    service.insert_juror(pool, extra_juror(salt)).unwrap();
    service.warm_pool(pool).unwrap();
    let mutated = service.pool(pool).unwrap().to_vec();
    let twin = service.create_pool(mutated.clone());
    service.warm_pool(twin).unwrap();
    mutated
}

// ---------------------------------------------------------------------
// On-disk observation & surgery
// ---------------------------------------------------------------------

fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_millis() as u64
}

fn list(dir: &Path, pred: impl Fn(&str) -> bool) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().and_then(|n| n.to_str()).is_some_and(&pred))
        .collect();
    out.sort();
    out
}

fn manifests(dir: &Path) -> Vec<PathBuf> {
    list(dir, |n| n.starts_with("manifest-") && n.ends_with(".json"))
}

fn entry_files(dir: &Path) -> Vec<PathBuf> {
    list(dir, |n| n.starts_with("art-") && n.ends_with(".snap"))
}

fn mtime(path: &Path) -> SystemTime {
    fs::metadata(path).unwrap().modified().unwrap()
}

/// Forges a `writer.lease` naming `holder` at `epoch` with a heartbeat
/// `age` in the past — a holder that died (old age) or a live rival
/// (zero age).
fn forge_lease(dir: &Path, holder: &str, epoch: u64, age: Duration) {
    let heartbeat = now_ms().saturating_sub(age.as_millis() as u64);
    fs::write(
        dir.join("writer.lease"),
        format!(
            r#"{{"format":"jury-lease","holder":"{holder}","epoch":"{epoch:016x}","heartbeat_ms":"{heartbeat:016x}"}}"#
        ),
    )
    .unwrap();
}

fn lease_fields(dir: &Path) -> (String, u64) {
    let value = json::parse(&fs::read_to_string(dir.join("writer.lease")).unwrap()).unwrap();
    let holder = value.get("holder").unwrap().as_str().unwrap().to_string();
    let epoch = u64::from_str_radix(value.get("epoch").unwrap().as_str().unwrap(), 16).unwrap();
    (holder, epoch)
}

/// Copies every regular file of `from` into `to`, overwriting — used to
/// reconstruct "union" crash states (new generation committed, old
/// generation not yet garbage-collected).
fn overlay(from: &Path, to: &Path) {
    for entry in fs::read_dir(from).unwrap() {
        let path = entry.unwrap().path();
        if path.is_file() {
            fs::copy(&path, to.join(path.file_name().unwrap())).unwrap();
        }
    }
}

// ---------------------------------------------------------------------
// Incremental checkpoints (tentpole part 2 + satellite: no-op mtimes)
// ---------------------------------------------------------------------

/// Two pools, three snapshots: the first writes everything, a no-op
/// re-snapshot writes *nothing* (and leaves every file mtime untouched),
/// and after dirtying exactly one pool only that pool's entry is
/// rewritten. Counters are exact; the stats gauges track generations.
#[test]
fn incremental_checkpoints_write_only_dirty_entries() {
    let tmp = TempDir::new("incremental");
    let jurors_a = pool(24);
    let jurors_b = pool(25);

    let mut writer = JuryService::new();
    let pa = writer.create_pool(jurors_a.clone());
    let pb = writer.create_pool(jurors_b.clone());
    drive(&mut writer, pa, &[]);
    drive(&mut writer, pb, &[]);

    let report = writer.snapshot(tmp.path()).unwrap();
    assert_eq!(report.entries, 2);
    assert_eq!(report.written, 2, "first snapshot writes everything");
    assert_eq!(report.retained, 0);
    assert_eq!(report.generation, 1);
    assert_eq!(writer.stats().snapshot_generation, 1, "gauge tracks the committed generation");
    assert_eq!(manifests(tmp.path()).len(), 1);

    // No-op re-snapshot: zero writes, zero new generation, untouched
    // mtimes on every entry file and on the manifest (nothing commits).
    let before: Vec<(PathBuf, SystemTime)> = entry_files(tmp.path())
        .into_iter()
        .chain(manifests(tmp.path()))
        .map(|p| (p.clone(), mtime(&p)))
        .collect();
    let report = writer.snapshot(tmp.path()).unwrap();
    assert_eq!(report.written, 0, "a clean store re-snapshots nothing");
    assert_eq!(report.retained, 2);
    assert_eq!(report.generation, 1, "no commit without changes");
    for (path, stamp) in &before {
        assert_eq!(mtime(path), *stamp, "{path:?} must be untouched by a no-op snapshot");
    }

    // Dirty exactly pool B (a juror joins; the warm set is repaired in
    // place), and only B's entry is rewritten; A's file is retained by
    // name, bytes untouched.
    let a_files = entry_files(tmp.path());
    let mutated_b = dirty(&mut writer, pb, 0);
    let report = writer.snapshot(tmp.path()).unwrap();
    assert_eq!(report.written, 1, "only the dirty pool is rewritten");
    assert_eq!(report.retained, 1);
    assert_eq!(report.entries, 2);
    assert_eq!(report.generation, 2);
    assert_eq!(writer.stats().snapshot_generation, 2);
    let survivors = entry_files(tmp.path());
    assert_eq!(survivors.len(), 2);
    let retained: Vec<&PathBuf> = survivors.iter().filter(|p| a_files.contains(p)).collect();
    assert_eq!(retained.len(), 1, "one generation-1 entry survives by reference");
    assert_eq!(
        manifests(tmp.path()).len(),
        1,
        "the old generation's manifest is garbage-collected after commit"
    );

    // A reader over the final directory answers bit-identically to
    // never-snapshotted controls for both pools.
    let mut reader = JuryService::with_config(reading(tmp.path()));
    let ra = reader.create_pool(jurors_a.clone());
    let rb = reader.create_pool(mutated_b.clone());
    assert_eq!(drive(&mut reader, ra, &[]), control(&jurors_a, &[]));
    assert_eq!(drive(&mut reader, rb, &[]), control(&mutated_b, &[]));
    let stats = reader.stats();
    assert_eq!(stats.snapshot_restores, 2);
    assert_eq!(stats.snapshot_rejections, 0);
    assert_eq!(stats.snapshot_generation, 2, "reader gauge reports the restored generation");
}

// ---------------------------------------------------------------------
// Crash boundaries (tentpole part 4)
// ---------------------------------------------------------------------

/// A writer that dies at any boundary of the commit sequence — after
/// temp writes, after entry renames, mid-manifest — leaves the previous
/// generation fully readable: the reader restores it bit-identically
/// and counts no rejection for debris that was never published.
#[test]
fn crash_at_every_commit_boundary_leaves_prior_generation_readable() {
    let tmp = TempDir::new("crash-boundaries");
    let jurors = pool(24);
    let cold = control(&jurors, &[]);

    let mut writer = JuryService::with_config(ServiceConfig::default());
    let pool_id = writer.create_pool(jurors.clone());
    drive(&mut writer, pool_id, &[]);
    writer.snapshot(tmp.path()).unwrap();
    let manifest_1 = fs::read_to_string(&manifests(tmp.path())[0]).unwrap();

    // Boundary 1: died after writing entry temp files.
    fs::write(tmp.path().join("art-00000000deadbeef-g2-e1.snap.tmp"), b"torn half-writ").unwrap();
    // Boundary 2: died after renaming a new entry, before the manifest
    // commit — an orphan no manifest references.
    fs::write(tmp.path().join("art-00000000deadbeef-g2-e1.snap"), b"orphan bytes").unwrap();
    // Boundary 3: died mid-manifest-write — a stray manifest temp.
    fs::write(tmp.path().join("manifest-2.json.tmp"), &manifest_1.as_bytes()[..40]).unwrap();

    let mut reader = JuryService::with_config(reading(tmp.path()));
    let rp = reader.create_pool(jurors.clone());
    assert_eq!(drive(&mut reader, rp, &[]), cold, "debris must not change answers");
    let stats = reader.stats();
    assert_eq!(stats.snapshot_restores, 1, "generation 1 restores through the debris");
    assert_eq!(stats.snapshot_rejections, 0, "unpublished debris is not a counted rejection");

    // Boundary 4: a torn manifest-2.json at several byte boundaries —
    // the reader falls through to the intact generation 1.
    for cut in [1, manifest_1.len() / 2, manifest_1.len() - 1] {
        fs::write(tmp.path().join("manifest-2.json"), &manifest_1.as_bytes()[..cut]).unwrap();
        let mut reader = JuryService::with_config(reading(tmp.path()));
        let rp = reader.create_pool(jurors.clone());
        assert_eq!(drive(&mut reader, rp, &[]), cold, "torn manifest at byte {cut}");
        let stats = reader.stats();
        assert_eq!(stats.snapshot_restores, 1, "fall-through restore at byte {cut}");
    }
    fs::remove_file(tmp.path().join("manifest-2.json")).unwrap();

    // The surviving writer's next *dirtied* snapshot heals the
    // directory: the commit's GC pass sweeps the debris.
    dirty(&mut writer, pool_id, 0);
    writer.snapshot(tmp.path()).unwrap();
    assert!(!tmp.path().join("art-00000000deadbeef-g2-e1.snap").exists(), "orphan GC'd");
    assert!(!tmp.path().join("art-00000000deadbeef-g2-e1.snap.tmp").exists(), "stray tmp GC'd");
    assert!(!tmp.path().join("manifest-2.json.tmp").exists(), "manifest tmp GC'd");
}

/// A reader that opens the directory mid-GC — the new generation
/// committed, the old generation's files not yet unlinked — must pick
/// the newest generation and restore it bit-identically.
#[test]
fn reader_mid_gc_restores_the_newest_generation() {
    let live = TempDir::new("midgc-live");
    let union = TempDir::new("midgc-union");
    let jurors = pool(24);

    let mut writer = JuryService::with_config(ServiceConfig::default());
    let pool_id = writer.create_pool(jurors.clone());
    drive(&mut writer, pool_id, &[]);
    writer.snapshot(live.path()).unwrap();
    overlay(live.path(), union.path());

    let mutated = dirty(&mut writer, pool_id, 0);
    let report = writer.snapshot(live.path()).unwrap();
    assert_eq!(report.generation, 2);
    // Union = generation 2 files *plus* everything generation 1 had:
    // exactly what a reader racing the GC unlink pass can observe.
    overlay(live.path(), union.path());
    assert!(manifests(union.path()).len() >= 2, "both generations visible mid-GC");

    let mut reader = JuryService::with_config(reading(union.path()));
    let rp = reader.create_pool(mutated.clone());
    assert_eq!(
        drive(&mut reader, rp, &[]),
        control(&mutated, &[]),
        "mid-GC reader must see the newest generation, bit-identically"
    );
    let stats = reader.stats();
    assert_eq!(stats.snapshot_restores, 1);
    assert_eq!(stats.snapshot_rejections, 0);
    assert_eq!(stats.snapshot_generation, 2, "highest durable generation wins");
}

// ---------------------------------------------------------------------
// Lease protocol (tentpole part 1)
// ---------------------------------------------------------------------

/// A live lease refuses a second writer — who can still restore
/// read-only and serve bit-identical answers — without touching the
/// directory.
#[test]
fn live_lease_refuses_a_second_writer_but_readonly_restore_works() {
    let tmp = TempDir::new("lease-held");
    let jurors = pool(24);
    let cold = control(&jurors, &[]);

    let mut writer = JuryService::new();
    let wp = writer.create_pool(jurors.clone());
    drive(&mut writer, wp, &[]);
    writer.snapshot(tmp.path()).unwrap();
    let (holder, epoch) = lease_fields(tmp.path());
    assert_eq!(epoch, 1, "a fresh directory starts at epoch 1");

    // The second service restores read-only: readers never consult the
    // lease.
    let mut second = JuryService::with_config(reading(tmp.path()));
    let sp = second.create_pool(jurors.clone());
    assert_eq!(drive(&mut second, sp, &[]), cold);
    assert_eq!(second.stats().snapshot_restores, 1);

    // But its write is refused while the holder's heartbeat is live.
    match second.snapshot(tmp.path()) {
        Err(SnapshotError::LeaseHeld { holder: seen, .. }) => {
            assert_eq!(seen, holder, "the refusal names the live holder")
        }
        other => panic!("expected LeaseHeld, got {other:?}"),
    }
    assert_eq!(manifests(tmp.path()).len(), 1, "a refused writer commits nothing");
    assert_eq!(lease_fields(tmp.path()), (holder, epoch), "the lease is untouched");
}

/// A lease whose holder died without releasing goes stale past the ttl
/// and is broken by epoch bump; the breaker commits and serving
/// continues. The dead holder's epoch is superseded even when it was
/// inflated above every committed generation.
#[test]
fn stale_lease_is_broken_by_epoch_bump_and_serving_continues() {
    let tmp = TempDir::new("stale-break");
    let jurors = pool(24);

    let mut seeder = JuryService::new();
    let sp = seeder.create_pool(jurors.clone());
    drive(&mut seeder, sp, &[]);
    seeder.snapshot(tmp.path()).unwrap();

    // The holder "died" two minutes ago with an inflated epoch 5.
    forge_lease(tmp.path(), "dead-writer", 5, Duration::from_secs(120));

    let mut breaker = JuryService::new();
    let bp = breaker.create_pool(jurors.clone());
    drive(&mut breaker, bp, &[]);
    dirty(&mut breaker, bp, 1);
    let report = breaker.snapshot(tmp.path()).unwrap();
    assert_eq!(report.generation, 2, "the breaker commits over the stale lease");

    let (holder, epoch) = lease_fields(tmp.path());
    assert_ne!(holder, "dead-writer", "the lease changed hands");
    assert_eq!(epoch, 6, "epoch bump clears the stale holder's epoch");

    // Serving continues: the breaker keeps solving and checkpointing,
    // and a reader restores its newest generation bit-identically.
    let mutated = dirty(&mut breaker, bp, 2);
    assert_eq!(breaker.snapshot(tmp.path()).unwrap().generation, 3);
    let mut reader = JuryService::with_config(reading(tmp.path()));
    let rp = reader.create_pool(mutated.clone());
    assert_eq!(drive(&mut reader, rp, &[]), control(&mutated, &[]));
    assert_eq!(reader.stats().snapshot_restores, 1);
}

/// A zombie writer — its lease broken while it still believes an old
/// epoch — is fenced: every commit is refused, nothing it does reaches
/// the directory. Once the winner releases, the zombie re-acquires
/// fresh (above every committed epoch) and recovers.
#[test]
fn fenced_zombie_writer_can_never_commit() {
    let tmp = TempDir::new("fence");
    let jurors = pool(24);

    let mut zombie = JuryService::new();
    let zp = zombie.create_pool(jurors.clone());
    drive(&mut zombie, zp, &[]);
    zombie.snapshot(tmp.path()).unwrap();

    // A rival broke the lease (live heartbeat, higher epoch) while the
    // zombie still believes epoch 1.
    forge_lease(tmp.path(), "rival-writer", 4, Duration::ZERO);

    match zombie.snapshot(tmp.path()) {
        Err(SnapshotError::Fenced { ours, winner }) => {
            assert_eq!(ours, 1, "the zombie held epoch 1");
            assert_eq!(winner, 4, "fenced by the rival's epoch");
        }
        other => panic!("expected Fenced, got {other:?}"),
    }
    assert_eq!(manifests(tmp.path()).len(), 1, "a fenced writer commits nothing");
    assert_eq!(lease_fields(tmp.path()).0, "rival-writer", "the rival's lease is untouched");

    // Retrying while the rival is live stays refused (now as a plain
    // lease conflict — the zombie no longer believes any epoch).
    assert!(matches!(zombie.snapshot(tmp.path()), Err(SnapshotError::LeaseHeld { .. })));

    // The rival releases; the zombie re-acquires *above* every epoch
    // ever committed and its (dirtied) warm state lands in a fresh
    // generation.
    fs::remove_file(tmp.path().join("writer.lease")).unwrap();
    let mutated = dirty(&mut zombie, zp, 3);
    let report = zombie.snapshot(tmp.path()).unwrap();
    assert_eq!(report.generation, 2, "recovery commits a fresh generation");
    let (_, epoch) = lease_fields(tmp.path());
    assert_eq!(epoch, 2, "fresh acquire clears the committed floor");

    let mut reader = JuryService::with_config(reading(tmp.path()));
    let rp = reader.create_pool(mutated.clone());
    assert_eq!(drive(&mut reader, rp, &[]), control(&mutated, &[]));
    assert_eq!(reader.stats().snapshot_restores, 1);
}

// ---------------------------------------------------------------------
// Reader staleness policy (tentpole part 3)
// ---------------------------------------------------------------------

/// `max_snapshot_age` refuses restores whose generation stamp is too
/// old: the service cold-builds (bit-identically), counts the skip, and
/// restores nothing. A generous bound restores as usual.
#[test]
fn staleness_policy_skips_old_snapshots_and_counts_them() {
    let tmp = TempDir::new("staleness");
    let jurors = pool(24);
    let cold = control(&jurors, &[]);

    let mut seeder = JuryService::new();
    let sp = seeder.create_pool(jurors.clone());
    drive(&mut seeder, sp, &[]);
    seeder.snapshot(tmp.path()).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Tight bound: the stamp is now older than allowed.
    let mut strict = JuryService::with_config(ServiceConfig {
        snapshot_dir: Some(tmp.path().to_path_buf()),
        max_snapshot_age: Some(Duration::from_millis(10)),
        ..Default::default()
    });
    let rp = strict.create_pool(jurors.clone());
    assert_eq!(drive(&mut strict, rp, &[]), cold, "a skipped restore cold-builds identically");
    let stats = strict.stats();
    assert_eq!(stats.stale_snapshot_skips, 1, "the skip is counted exactly once");
    assert_eq!(stats.snapshot_restores, 0, "too stale: nothing restored");
    assert_eq!(stats.snapshot_rejections, 0, "staleness is a policy skip, not damage");

    // Generous bound: the same directory restores.
    let mut lax = JuryService::with_config(ServiceConfig {
        snapshot_dir: Some(tmp.path().to_path_buf()),
        max_snapshot_age: Some(Duration::from_secs(3600)),
        ..Default::default()
    });
    let rp = lax.create_pool(jurors.clone());
    assert_eq!(drive(&mut lax, rp, &[]), cold);
    let stats = lax.stats();
    assert_eq!(stats.stale_snapshot_skips, 0);
    assert_eq!(stats.snapshot_restores, 1);
    assert!(stats.snapshot_age_ms >= 50, "the age gauge reflects the stamp");
}

// ---------------------------------------------------------------------
// Same-process writer/reader race (satellite)
// ---------------------------------------------------------------------

/// A `create_pool` restore racing a `snapshot()` writer in another
/// thread of the same process: whatever generation each reader lands
/// on — or a cold fallback if it loses a GC race — every answer stays
/// bit-identical and nothing errors.
#[test]
fn concurrent_restore_races_a_snapshot_writer_without_torn_reads() {
    let tmp = TempDir::new("race");
    let jurors = pool(32);
    // Pool *content* never changes during the race, so one control
    // stream covers every reader regardless of which generation (or
    // cold build) it got.
    let cold = control(&jurors, &[]);

    let mut writer = JuryService::new();
    let wp = writer.create_pool(jurors.clone());
    drive(&mut writer, wp, &[]);
    // A second pool the writer keeps churning: every iteration commits
    // a fresh generation (and garbage-collects the previous one) while
    // the readers race to restore the *stable* pool's entry.
    let mp = writer.create_pool(pool(18));
    drive(&mut writer, mp, &[]);
    writer.snapshot(tmp.path()).unwrap();

    std::thread::scope(|scope| {
        let dir = tmp.path();
        let handle = scope.spawn(move || {
            let mut writer = writer;
            for salt in 0..30 {
                dirty(&mut writer, mp, salt);
                writer.snapshot(dir).unwrap();
            }
            writer
        });

        for _ in 0..12 {
            let mut reader = JuryService::with_config(reading(tmp.path()));
            let rp = reader.create_pool(jurors.clone());
            assert_eq!(
                drive(&mut reader, rp, &[]),
                cold,
                "a racing reader must never see a torn or wrong answer"
            );
            let stats = reader.stats();
            assert!(
                stats.snapshot_restores == 1 || stats.snapshot_rejections >= 1,
                "each reader either restores a generation or loses the GC race and \
                 cold-builds as a counted rejection: {stats:?}"
            );
        }

        let mut writer = handle.join().expect("writer thread panicked");
        assert_eq!(writer.snapshot(tmp.path()).unwrap().written, 0, "writer ends clean");
    });
}
