//! Differential harness: sharded serving must be invisible.
//!
//! For every shard count K ∈ {1, 2, 7, 16} these properties drive
//! *identical* task streams and mutation sequences through a sharded
//! service, an unsharded service and the direct solvers, and assert
//! **bit-identical** [`Selection`]s — members, JER bits, cost bits and
//! solver stats — including solver errors, pools whose size is not
//! divisible by K, empty shards (K > pool size), budgets that straddle
//! shard boundaries, and interleaved insert/update/remove sequences.
//!
//! The guarantee under test is the sharding invariant documented in
//! `jury_service`'s crate docs: per-shard sorted runs K-way-merge into
//! exactly the flat sort's permutation, so the solvers' presorted scans
//! perform the identical float operations.
//!
//! Every PayM assertion also exercises the **budget staircase**: each
//! service task is solved twice (the staircase-recording miss and the
//! binary-search replay hit), and [`check_staircase`] drives a standalone
//! [`Staircase`] against `PayAlg::solve_presorted` on budgets sitting
//! exactly on, just under and between the greedy order's affordability
//! cliffs — including across interleaved insert/update/remove sequences,
//! whose in-place order and ladder repairs must leave the replayed trace
//! bit-identical.

use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_core::model::CrowdModel;
use jury_core::paym::{PayAlg, PayConfig, Staircase};
use jury_core::problem::Selection;
use jury_core::solver::SolverScratch;
use jury_service::{DecisionTask, JuryService, PoolId, ServiceConfig, ServiceError, ShardConfig};
use proptest::collection::vec;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

fn sharded_service(k: usize) -> JuryService {
    JuryService::with_config(ServiceConfig {
        shard: ShardConfig { threshold: 0, shards: k, ..Default::default() },
        ..Default::default()
    })
}

/// Random `(ε, cost)` pools. Rates are quantised so equal keys (the
/// tie-break paths of both comparators) occur routinely.
fn pools(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    vec((0.001..0.999f64, 0.0..1.0f64), 1..=max_len).prop_map(|mut pairs| {
        for (i, (e, c)) in pairs.iter_mut().enumerate() {
            if i % 3 == 0 {
                *e = (*e * 16.0).ceil() / 16.0 - 1.0 / 32.0;
                *c = (*c * 4.0).floor() / 4.0;
            }
        }
        pairs
    })
}

fn build(pairs: &[(f64, f64)]) -> Vec<Juror> {
    pool_from_rates_and_costs(pairs).unwrap()
}

/// Bit-level equality including solver stats (`PartialEq` on `Selection`
/// compares floats numerically; pin the exact bit patterns on top).
fn assert_identical(
    got: &Result<Selection, ServiceError>,
    want: &Result<Selection, ServiceError>,
    ctx: &str,
) {
    match (got, want) {
        (Ok(g), Ok(w)) => {
            assert_eq!(g, w, "{ctx}");
            assert_eq!(g.jer.to_bits(), w.jer.to_bits(), "{ctx}: jer bits");
            assert_eq!(g.total_cost.to_bits(), w.total_cost.to_bits(), "{ctx}: cost bits");
            assert_eq!(g.stats, w.stats, "{ctx}: solver stats");
        }
        (Err(g), Err(w)) => assert_eq!(g, w, "{ctx}"),
        other => panic!("{ctx}: sharded/unsharded divergence: {other:?}"),
    }
}

/// Bit-level *selection* equality — members, JER bits, cost bits — with
/// stats exempted: the documented contract between the bound-pruned
/// AltrM scan (what the service runs) and the full presorted scan. The
/// accounting identity `jer_evaluations + pruned_by_bound ==
/// candidates_considered` is pinned instead.
fn assert_selection_identical(
    got: &Result<Selection, ServiceError>,
    want: &Result<Selection, ServiceError>,
    ctx: &str,
) {
    match (got, want) {
        (Ok(g), Ok(w)) => {
            assert_eq!(g.members, w.members, "{ctx}: members");
            assert_eq!(g.jer.to_bits(), w.jer.to_bits(), "{ctx}: jer bits");
            assert_eq!(g.total_cost.to_bits(), w.total_cost.to_bits(), "{ctx}: cost bits");
            assert_eq!(
                g.stats.candidates_considered, w.stats.candidates_considered,
                "{ctx}: candidate counts"
            );
            assert_eq!(
                g.stats.jer_evaluations + g.stats.pruned_by_bound,
                w.stats.jer_evaluations + w.stats.pruned_by_bound,
                "{ctx}: every size is either evaluated or pruned"
            );
        }
        (Err(g), Err(w)) => assert_eq!(g, w, "{ctx}"),
        other => panic!("{ctx}: pruned/full divergence: {other:?}"),
    }
}

/// Solves AltrM over `jurors` through both `AltrAlg::solve_presorted`
/// (the full scan) and `AltrAlg::solve_pruned` (the service's
/// rescan-free bound sweep), asserting bit-identical selections, and
/// returns the pruned answer so callers can pin service replies against
/// it *stats included* (the service runs exactly this scan).
fn check_altr_pruned(jurors: &[Juror], ctx: &str) -> Result<Selection, ServiceError> {
    let mut order = Vec::new();
    jury_core::solver::sorted_order_into(jurors, &mut order);
    let alg = AltrAlg::default();
    let full =
        alg.solve_presorted(jurors, &order, &mut SolverScratch::new()).map_err(ServiceError::from);
    let pruned =
        alg.solve_pruned(jurors, &order, &mut SolverScratch::new()).map_err(ServiceError::from);
    assert_selection_identical(&pruned, &full, &format!("{ctx}: pruned vs presorted"));
    pruned
}

/// Budgets that force juries to straddle shard boundaries: cumulative
/// greedy-order costs (the exact affordability cliffs), plus the
/// endpoints and an unlimited budget.
fn boundary_budgets(jurors: &[Juror]) -> Vec<f64> {
    let mut order = Vec::new();
    PayAlg::greedy_order_into(jurors, &mut order);
    let mut budgets = vec![0.0, f64::MAX];
    let mut acc = 0.0;
    for (i, &j) in order.iter().enumerate() {
        acc += jurors[j].cost;
        // Exactly on, just under and just over each cliff; sampled so
        // the list stays small on big pools.
        if i % 3 == 0 || i + 1 == order.len() {
            budgets.push(acc);
            budgets.push(acc - 1e-9);
            budgets.push(acc * 0.5);
        }
    }
    budgets
}

/// Solves the same task on the sharded service, the unsharded service
/// and the direct solver, asserting all three agree bit-for-bit. PayM
/// tasks are solved *twice* on each service so both the
/// staircase-recording miss and the staircase-replay hit are pinned
/// against the direct scan.
fn check_task(
    sharded: &mut JuryService,
    flat: &mut JuryService,
    pool: PoolId,
    model: CrowdModel,
    ctx: &str,
) {
    let task = DecisionTask { pool, model };
    let s = sharded.solve(&task);
    let f = flat.solve(&task);
    assert_identical(&s, &f, &format!("{ctx}: sharded vs flat service"));
    let jurors = flat.pool(pool).unwrap();
    match model {
        CrowdModel::Altruism => {
            // The selection must match the direct full scan bit-for-bit
            // (stats exempted — the service runs the bound-pruned scan)
            // and the standalone pruned scan stats included.
            let direct = AltrAlg::solve(jurors, &AltrConfig::default()).map_err(ServiceError::from);
            assert_selection_identical(&s, &direct, &format!("{ctx}: sharded vs direct solver"));
            let pruned = check_altr_pruned(jurors, ctx);
            assert_identical(&s, &pruned, &format!("{ctx}: sharded vs pruned scan"));
        }
        CrowdModel::PayAsYouGo { budget } => {
            let direct =
                PayAlg::solve(jurors, budget, &PayConfig::default()).map_err(ServiceError::from);
            assert_identical(&s, &direct, &format!("{ctx}: sharded vs direct solver"));
            let s_hit = sharded.solve(&task);
            let f_hit = flat.solve(&task);
            assert_identical(&s_hit, &direct, &format!("{ctx}: sharded staircase hit vs direct"));
            assert_identical(&f_hit, &direct, &format!("{ctx}: flat staircase hit vs direct"));
        }
    }
}

/// Drives a standalone [`Staircase`] over the pool's greedy order across
/// `budgets`, asserting both the recording miss and the replay hit are
/// bit-identical to [`PayAlg::solve_presorted`] — the staircase contract
/// independent of any service plumbing.
fn check_staircase(jurors: &[Juror], budgets: &[f64], ctx: &str) {
    let mut order = Vec::new();
    PayAlg::greedy_order_into(jurors, &mut order);
    let mut staircase = Staircase::new();
    let mut scratch = SolverScratch::new();
    for &budget in budgets {
        let alg = PayAlg::new(budget, PayConfig::default());
        let direct = alg
            .solve_presorted(jurors, &order, &mut SolverScratch::new())
            .map_err(ServiceError::from);
        for round in ["miss", "hit"] {
            let got = alg
                .solve_staircase(jurors, &order, &mut staircase, &mut scratch)
                .map_err(ServiceError::from);
            assert_identical(&got, &direct, &format!("{ctx}: staircase {round} budget={budget}"));
        }
    }
}

proptest! {
    // Cold, warm and batched solves agree across every K on random
    // pools (lengths rarely divisible by K) and boundary budgets.
    #[test]
    fn sharded_matches_unsharded_across_k(pairs in pools(120), extra in 0.0..3.0f64) {
        let jurors = build(&pairs);
        let budgets = {
            let mut b = boundary_budgets(&jurors);
            b.push(extra);
            b
        };
        check_staircase(&jurors, &budgets, &format!("n={}", jurors.len()));
        for k in SHARD_COUNTS {
            let mut sharded = sharded_service(k);
            let mut flat = JuryService::new();
            let sp = sharded.create_pool(jurors.clone());
            let fp = flat.create_pool(jurors.clone());
            prop_assert_eq!(sp, fp, "identical registration order must yield identical ids");
            prop_assert_eq!(sharded.is_sharded(sp), Ok(true));

            let mut tasks = vec![DecisionTask::altruism(sp)];
            tasks.extend(budgets.iter().map(|&b| DecisionTask::pay_as_you_go(sp, b)));
            // Cold then warm single solves.
            for round in 0..2 {
                for task in &tasks {
                    check_task(&mut sharded, &mut flat, sp, task.model,
                        &format!("k={k} n={} round={round}", jurors.len()));
                }
            }
            // Batched (interleaved to exercise chunking).
            let mut batch = tasks.clone();
            batch.extend(tasks.iter().rev().copied());
            let sb = sharded.solve_batch(&batch);
            let fb = flat.solve_batch(&batch);
            for (i, (s, f)) in sb.iter().zip(&fb).enumerate() {
                assert_identical(s, f, &format!("k={k} batch[{i}]"));
            }
        }
    }

    // Interleaved insert/update/remove sequences keep every K
    // bit-identical after each mutation.
    #[test]
    fn mutation_sequences_stay_identical(
        pairs in pools(48),
        ops in vec((0usize..3, (0.001..0.999f64, 0.0..1.0f64), any::<prop::sample::Index>()), 1..10),
        budget in 0.0..2.0f64,
    ) {
        let jurors = build(&pairs);
        let mut flat = JuryService::new();
        let fp = flat.create_pool(jurors.clone());
        let mut services: Vec<(usize, JuryService)> = SHARD_COUNTS
            .iter()
            .map(|&k| {
                let mut s = sharded_service(k);
                let sp = s.create_pool(jurors.clone());
                assert_eq!(sp, fp);
                (k, s)
            })
            .collect();

        let mut next_id = 1000u32;
        for (step, (kind, (e, c), idx)) in ops.iter().enumerate() {
            let len = flat.pool(fp).unwrap().len();
            // Keep pools non-empty so update/remove indices resolve.
            let kind = if len == 0 { 0 } else { *kind };
            match kind {
                0 => {
                    let j = Juror::new(next_id, ErrorRate::new(*e).unwrap(), *c);
                    next_id += 1;
                    let fpos = flat.insert_juror(fp, j).unwrap();
                    for (k, s) in &mut services {
                        prop_assert_eq!(s.insert_juror(fp, j).unwrap(), fpos, "k={}", k);
                    }
                }
                1 => {
                    let i = idx.index(len);
                    let j = Juror::new(next_id, ErrorRate::new(*e).unwrap(), *c);
                    next_id += 1;
                    flat.update_juror(fp, i, j).unwrap();
                    for (_, s) in &mut services {
                        s.update_juror(fp, i, j).unwrap();
                    }
                }
                _ => {
                    let i = idx.index(len);
                    let removed = flat.remove_juror(fp, i).unwrap();
                    for (k, s) in &mut services {
                        prop_assert_eq!(s.remove_juror(fp, i).unwrap(), removed, "k={}", k);
                    }
                }
            }
            let current = flat.pool(fp).unwrap().to_vec();
            let mut budgets = vec![budget, f64::MAX];
            if !current.is_empty() {
                let total: f64 = current.iter().map(|j| j.cost).sum();
                budgets.push(total * 0.5);
                // A fresh staircase over the mutated pool must replay the
                // direct scan bit-for-bit on every affordability cliff.
                check_staircase(&current, &boundary_budgets(&current), &format!("step={step}"));
            }
            // The pruned scan stays bit-identical to the full scan on
            // the mutated pool, and every service's repaired warm path
            // must reproduce it exactly (stats included).
            let altr_ref = check_altr_pruned(&current, &format!("step={step}"));
            let altr_task = DecisionTask::altruism(fp);
            assert_identical(
                &flat.solve(&altr_task),
                &altr_ref,
                &format!("step={step} flat repaired altr"),
            );
            for (k, s) in &mut services {
                prop_assert_eq!(s.pool(fp).unwrap(), current.as_slice(), "k={} step={}", k, step);
                for &b in &budgets {
                    let task = DecisionTask::pay_as_you_go(fp, b);
                    assert_identical(
                        &s.solve(&task),
                        &flat.solve(&task),
                        &format!("k={k} step={step} budget={b}"),
                    );
                }
                assert_identical(
                    &s.solve(&altr_task),
                    &altr_ref,
                    &format!("k={k} step={step} altr"),
                );
            }
        }
    }

    // The warm-artifact store must be invisible: replicated pools served
    // from one interned artifact set answer bit-identically — members,
    // JER bits, cost bits *and* stats — to a sharing-disabled service,
    // across interleaved mutations that detach pools copy-on-write,
    // publish repaired artifacts and re-join converged siblings. Both
    // flat and sharded layouts are driven; every PayM task is solved
    // twice so the shared staircase's replay hit is pinned too.
    #[test]
    fn shared_artifacts_match_private_across_detach_rejoin(
        pairs in pools(40),
        edits in vec(((0.001..0.999f64, 0.0..1.0f64), any::<prop::sample::Index>()), 1..5),
        budget in 0.0..2.0f64,
    ) {
        for k in [None, Some(2), Some(7)] {
            let config = |share: bool| ServiceConfig {
                share_artifacts: share,
                shard: match k {
                    None => ShardConfig::default(),
                    Some(k) => ShardConfig { threshold: 0, shards: k, ..Default::default() },
                },
                ..Default::default()
            };
            let jurors = build(&pairs);
            let mut shared = JuryService::with_config(config(true));
            let mut private = JuryService::with_config(config(false));
            let replicas: Vec<PoolId> =
                (0..3).map(|_| shared.create_pool(jurors.clone())).collect();
            let p = private.create_pool(jurors.clone());

            let check = |shared: &mut JuryService,
                         private: &mut JuryService,
                         pool: PoolId,
                         ctx: &str| {
                let altr = DecisionTask::altruism(pool);
                let altr_p = DecisionTask::altruism(p);
                assert_identical(
                    &shared.solve(&altr),
                    &private.solve(&altr_p),
                    &format!("{ctx}: altr"),
                );
                let len = private.pool(p).unwrap().len() as f64;
                for b in [budget, budget * len, f64::MAX] {
                    let task = DecisionTask::pay_as_you_go(pool, b);
                    let task_p = DecisionTask::pay_as_you_go(p, b);
                    let want = private.solve(&task_p);
                    assert_identical(&shared.solve(&task), &want, &format!("{ctx}: paym {b}"));
                    assert_identical(
                        &shared.solve(&task),
                        &want,
                        &format!("{ctx}: paym replay {b}"),
                    );
                }
            };

            for (i, &pool) in replicas.iter().enumerate() {
                check(&mut shared, &mut private, pool, &format!("k={k:?} cold replica {i}"));
            }
            prop_assert!(
                shared.shares_artifacts_with(replicas[0], replicas[2]).unwrap(),
                "k={:?}: replicas must share one artifact set", k
            );

            for (step, ((e, c), idx)) in edits.iter().enumerate() {
                let i = idx.index(jurors.len());
                let edit = Juror::new(2000 + step as u32, ErrorRate::new(*e).unwrap(), *c);
                private.update_juror(p, i, edit).unwrap();
                // Staggered application: the first replica detaches (and
                // publishes — it had siblings), the rest re-join the
                // published entry one by one.
                for (r, &pool) in replicas.iter().enumerate() {
                    shared.update_juror(pool, i, edit).unwrap();
                    check(
                        &mut shared,
                        &mut private,
                        pool,
                        &format!("k={k:?} step={step} replica {r}"),
                    );
                }
                prop_assert!(
                    shared.shares_artifacts_with(replicas[0], replicas[2]).unwrap(),
                    "k={:?} step={}: identically-mutated replicas must converge", k, step
                );
            }
            let stats = shared.stats();
            prop_assert!(stats.artifact_detaches >= 3, "k={:?}: every replica detached", k);
            prop_assert!(stats.artifact_rejoins >= 2, "k={:?}: followers re-joined", k);
        }
    }

    // A flat pool promoted mid-stream (inserts crossing the shard
    // threshold) keeps matching a never-sharded reference.
    #[test]
    fn promotion_preserves_bit_identity(
        pairs in pools(20),
        extras in vec((0.001..0.999f64, 0.0..1.0f64), 1..12),
        budget in 0.0..2.0f64,
    ) {
        let jurors = build(&pairs);
        let threshold = jurors.len() + extras.len() / 2;
        let mut promoting = JuryService::with_config(ServiceConfig {
            shard: ShardConfig { threshold, shards: 7, ..Default::default() },
            ..Default::default()
        });
        let mut flat = JuryService::new();
        let pp = promoting.create_pool(jurors.clone());
        let fp = flat.create_pool(jurors);
        prop_assert_eq!(pp, fp);
        for (i, &(e, c)) in extras.iter().enumerate() {
            let j = Juror::new(5000 + i as u32, ErrorRate::new(e).unwrap(), c);
            promoting.insert_juror(pp, j).unwrap();
            flat.insert_juror(fp, j).unwrap();
            for model in [CrowdModel::Altruism, CrowdModel::PayAsYouGo { budget }] {
                let task = DecisionTask { pool: pp, model };
                assert_identical(
                    &promoting.solve(&task),
                    &flat.solve(&task),
                    &format!("insert {i}, promoted={}", promoting.is_sharded(pp).unwrap()),
                );
            }
        }
        prop_assert!(promoting.is_sharded(pp).unwrap(), "stream must end sharded");
    }
}

/// Deterministic sweep: every pool size around the shard counts
/// (divisible, off-by-one, far smaller than K) on both models.
#[test]
fn size_sweep_including_empty_shards() {
    for n in (1..=34).chain([49, 96, 97]) {
        let quotes: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let u = (i as f64 * 0.6180339887498949) % 1.0;
                (0.02 + 0.93 * u, ((i * 7) % 5) as f64 / 5.0)
            })
            .collect();
        let jurors = build(&quotes);
        let budgets = boundary_budgets(&jurors);
        check_staircase(&jurors, &budgets, &format!("sweep n={n}"));
        let mut flat = JuryService::new();
        let fp = flat.create_pool(jurors.clone());
        for k in SHARD_COUNTS {
            let mut sharded = sharded_service(k);
            let sp = sharded.create_pool(jurors.clone());
            assert_eq!(sp, fp);
            check_task(&mut sharded, &mut flat, fp, CrowdModel::Altruism, &format!("n={n} k={k}"));
            for &b in &budgets {
                check_task(
                    &mut sharded,
                    &mut flat,
                    fp,
                    CrowdModel::PayAsYouGo { budget: b },
                    &format!("n={n} k={k} budget={b}"),
                );
            }
        }
    }
}

/// A forced-degeneracy episode — hot-topic removals hollowing one shard
/// until `refresh_degeneracy` flags it, healed by an online steal, then
/// skewed ingest pouring every insert into the rebuilt gap — must keep
/// selections bit-identical to a flat reference before, during and
/// after the re-balance. Re-balancing is a pure permutation of shard
/// membership, so the K-way-merged global order (and therefore every
/// float the solvers touch) never changes.
#[test]
fn forced_degeneracy_rebalance_keeps_bit_identity() {
    let k = 4;
    let quotes: Vec<(f64, f64)> = (0..60)
        .map(|i| {
            let u = (i as f64 * 0.6180339887498949) % 1.0;
            (0.02 + 0.93 * u, ((i * 3) % 7) as f64 / 7.0)
        })
        .collect();
    let jurors = build(&quotes);
    let mut sharded = sharded_service(k);
    let mut flat = JuryService::new();
    let sp = sharded.create_pool(jurors.clone());
    let fp = flat.create_pool(jurors);
    assert_eq!(sp, fp);
    sharded.warm_pool(sp).unwrap();
    flat.warm_pool(fp).unwrap();
    let warm_full_repairs = sharded.stats().full_repairs;

    let check = |sharded: &mut JuryService, flat: &mut JuryService, ctx: &str| {
        for model in [CrowdModel::Altruism, CrowdModel::PayAsYouGo { budget: 1.3 }] {
            let s = sharded.solve(&DecisionTask { pool: sp, model });
            let f = flat.solve(&DecisionTask { pool: fp, model });
            assert_identical(&s, &f, ctx);
        }
    };
    check(&mut sharded, &mut flat, "warm baseline");

    // Hollow out shard 0: its creation-time members sit at positions
    // 0, 4, 8, … = 4m, and after removing original 4m the juror
    // originally at 4(m+1) sits at position 3(m+1). Shard 0 starts with
    // 15 of 60 jurors; the 13th removal drops it below 25% of the mean
    // shard size, flagging the episode and triggering the steal.
    for m in 0..13 {
        sharded.remove_juror(sp, 3 * m).unwrap();
        flat.remove_juror(fp, 3 * m).unwrap();
        check(&mut sharded, &mut flat, &format!("during drain, removal {m}"));
    }
    let stats = sharded.stats();
    assert_eq!(stats.degenerate_shards, 1, "the drain is one degeneracy episode");
    assert_eq!(stats.shard_rebalances, 1, "the episode was healed by one re-balance");
    assert_eq!(stats.full_repairs, warm_full_repairs, "healing never rebuilt a shard");
    assert!(sharded.is_warm(sp), "the steal repairs in place — the pool stays warm");

    // Skewed ingest: every insert lands on the smallest shard (the one
    // just stolen from), and each is repaired in place.
    for i in 0..16u32 {
        let j = Juror::new(9000 + i, ErrorRate::new(0.03 + f64::from(i) / 40.0).unwrap(), 0.4);
        sharded.insert_juror(sp, j).unwrap();
        flat.insert_juror(fp, j).unwrap();
        check(&mut sharded, &mut flat, &format!("after skewed insert {i}"));
    }
    let stats = sharded.stats();
    assert_eq!(stats.insert_repairs, 16, "every insert was a rank-insert repair");
    assert_eq!(stats.full_repairs, warm_full_repairs, "skewed ingest never rebuilt a shard");
    assert!(sharded.is_warm(sp), "the pool never went cold across the episode");
}

/// Counter gate: a warm sharded insert repairs the owning shard in
/// place — `full_repairs` must never tick, `insert_repairs` counts
/// every one, and the pool stays warm throughout.
#[test]
fn warm_sharded_insert_never_full_repairs() {
    for k in SHARD_COUNTS {
        let quotes: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let u = (i as f64 * 0.6180339887498949) % 1.0;
                (0.02 + 0.93 * u, ((i * 7) % 5) as f64 / 5.0)
            })
            .collect();
        let mut service = sharded_service(k);
        let pool = service.create_pool(build(&quotes));
        service.warm_pool(pool).unwrap();
        let base = service.stats().full_repairs;
        for i in 0..24u32 {
            let j = Juror::new(9000 + i, ErrorRate::new(0.05 + f64::from(i) / 50.0).unwrap(), 0.2);
            service.insert_juror(pool, j).unwrap();
            let stats = service.stats();
            assert_eq!(stats.full_repairs, base, "k={k}: insert {i} must not full-repair");
            assert_eq!(stats.insert_repairs, i as usize + 1, "k={k}: insert {i} repairs in place");
            assert!(service.is_warm(pool), "k={k}: insert {i} must keep the pool warm");
        }
    }
}

/// An empty sharded pool reports the solver's errors, exactly like an
/// empty flat pool.
#[test]
fn empty_sharded_pool_matches_flat_errors() {
    let mut sharded = sharded_service(16);
    let mut flat = JuryService::new();
    let sp = sharded.create_pool(vec![]);
    let fp = flat.create_pool(vec![]);
    for model in [CrowdModel::Altruism, CrowdModel::PayAsYouGo { budget: 1.0 }] {
        let s = sharded.solve(&DecisionTask { pool: sp, model });
        let f = flat.solve(&DecisionTask { pool: fp, model });
        assert_eq!(s, f);
        assert!(s.is_err());
    }
}
