//! Service error-path coverage: stale pool handles, out-of-range juror
//! indices and batches mixing valid and invalid tasks — on flat *and*
//! sharded pools. The happy paths live in `equivalence.rs` /
//! `sharded_differential.rs`; these tests pin the failure contract.

use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::error::JuryError;
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_core::paym::{PayAlg, PayConfig};
use jury_service::{DecisionTask, JuryService, PoolId, ServiceConfig, ServiceError, ShardConfig};

fn jurors() -> Vec<Juror> {
    pool_from_rates_and_costs(&[
        (0.1, 0.2),
        (0.2, 0.2),
        (0.2, 0.3),
        (0.3, 0.4),
        (0.3, 0.65),
        (0.4, 0.05),
        (0.4, 0.05),
    ])
    .unwrap()
}

fn services() -> Vec<(&'static str, JuryService)> {
    vec![
        ("flat", JuryService::new()),
        (
            "sharded",
            JuryService::with_config(ServiceConfig {
                shard: ShardConfig { threshold: 1, shards: 3, ..Default::default() },
                ..Default::default()
            }),
        ),
    ]
}

#[test]
fn stale_pool_id_after_remove_pool_fails_everywhere() {
    for (label, mut service) in services() {
        let stale = service.create_pool(jurors());
        service.warm_pool(stale).unwrap();
        let returned = service.remove_pool(stale).unwrap();
        assert_eq!(returned.len(), 7, "{label}");

        // A new pool must get a fresh id: the stale handle never aliases.
        let fresh = service.create_pool(jurors());
        assert_ne!(fresh, stale, "{label}: ids are never reused");

        let expect_unknown = ServiceError::UnknownPool(stale);
        assert_eq!(service.solve(&DecisionTask::altruism(stale)), Err(expect_unknown.clone()));
        assert_eq!(
            service.solve(&DecisionTask::pay_as_you_go(stale, 1.0)),
            Err(expect_unknown.clone())
        );
        assert_eq!(service.warm_pool(stale), Err(expect_unknown.clone()));
        assert_eq!(service.pool(stale).unwrap_err(), expect_unknown);
        assert_eq!(service.is_sharded(stale).unwrap_err(), expect_unknown);
        assert_eq!(service.shard_count(stale).unwrap_err(), expect_unknown);
        assert_eq!(service.jer_profile(stale).unwrap_err(), expect_unknown);
        assert_eq!(service.jer_probe(stale, 3).unwrap_err(), expect_unknown);
        assert_eq!(service.reliability_order(stale).unwrap_err(), expect_unknown);
        assert_eq!(
            service.insert_juror(stale, Juror::new(1, ErrorRate::new(0.2).unwrap(), 0.0)),
            Err(expect_unknown.clone())
        );
        assert_eq!(
            service.update_juror(stale, 0, Juror::new(1, ErrorRate::new(0.2).unwrap(), 0.0)),
            Err(expect_unknown.clone())
        );
        assert_eq!(service.remove_juror(stale, 0), Err(expect_unknown.clone()));
        assert_eq!(service.remove_pool(stale), Err(expect_unknown));

        // The fresh pool is unaffected.
        assert!(service.solve(&DecisionTask::altruism(fresh)).is_ok(), "{label}");
        assert!(!service.is_warm(stale), "{label}: stale handles are never warm");
    }
}

#[test]
fn out_of_range_juror_indices_fail_without_invalidating() {
    for (label, mut service) in services() {
        let pool = service.create_pool(jurors());
        service.warm_pool(pool).unwrap();
        let j = Juror::new(9, ErrorRate::new(0.2).unwrap(), 0.0);
        for index in [7usize, 8, usize::MAX] {
            assert_eq!(
                service.update_juror(pool, index, j),
                Err(ServiceError::JurorOutOfRange { pool, index, len: 7 }),
                "{label}"
            );
            assert_eq!(
                service.remove_juror(pool, index),
                Err(ServiceError::JurorOutOfRange { pool, index, len: 7 }),
                "{label}"
            );
        }
        // A failed mutation must not touch cached state.
        assert!(service.is_warm(pool), "{label}: failed mutations must not invalidate");
        assert_eq!(service.stats().cache_invalidations, 0, "{label}");
    }
}

#[test]
fn batches_mixing_valid_and_invalid_tasks_stay_positional() {
    for (label, mut service) in services() {
        let pool = service.create_pool(jurors());
        let empty = service.create_pool(vec![]);
        let ghost = PoolId::from_raw_for_tests();

        let tasks = vec![
            DecisionTask::altruism(pool),                // ok
            DecisionTask::altruism(ghost),               // unknown pool
            DecisionTask::pay_as_you_go(pool, f64::NAN), // invalid budget
            DecisionTask::pay_as_you_go(pool, 1.0),      // ok
            DecisionTask::altruism(empty),               // empty pool
            DecisionTask::pay_as_you_go(pool, 0.001),    // infeasible budget
            DecisionTask::pay_as_you_go(ghost, 1.0),     // unknown pool
            DecisionTask::altruism(pool),                // ok (warm replay)
        ];
        let results = service.solve_batch(&tasks);
        assert_eq!(results.len(), tasks.len(), "{label}");

        let direct_altr = AltrAlg::solve(&jurors(), &AltrConfig::default()).unwrap();
        let direct_pay = PayAlg::solve(&jurors(), 1.0, &PayConfig::default()).unwrap();
        assert_eq!(results[0].as_ref().unwrap(), &direct_altr, "{label}");
        assert_eq!(results[1], Err(ServiceError::UnknownPool(ghost)), "{label}");
        assert!(
            matches!(results[2], Err(ServiceError::Solver(JuryError::InvalidBudget(_)))),
            "{label}: {:?}",
            results[2]
        );
        assert_eq!(results[3].as_ref().unwrap(), &direct_pay, "{label}");
        assert_eq!(results[4], Err(ServiceError::Solver(JuryError::EmptyPool)), "{label}");
        assert_eq!(
            results[5],
            Err(ServiceError::Solver(JuryError::NoFeasibleJury { budget: 0.001 })),
            "{label}"
        );
        assert_eq!(results[6], Err(ServiceError::UnknownPool(ghost)), "{label}");
        assert_eq!(results[7].as_ref().unwrap(), &direct_altr, "{label}");

        // Error tasks still count as solved attempts; the batch counter
        // advances once.
        let stats = service.stats();
        assert_eq!(stats.tasks_solved, tasks.len(), "{label}");
        assert_eq!(stats.batches, 1, "{label}");
    }
}

/// Helper constructing an unregistered id without exposing internals:
/// round-trip through the wire format.
trait GhostId {
    fn from_raw_for_tests() -> PoolId;
}

impl GhostId for PoolId {
    fn from_raw_for_tests() -> PoolId {
        serde::json::from_str("404404").expect("PoolId deserializes from a number")
    }
}
