//! Fault-injection harness for the snapshot/restore subsystem.
//!
//! The contract under test (see `jury_service`'s *persistence
//! contract*): a service pointed at a snapshot directory answers
//! **bit-identically** to one that never saw a snapshot — whether the
//! snapshot is pristine (verified restore, counted in
//! `snapshot_restores`) or damaged in any way (counted rejection in
//! `snapshot_rejections`, silent fall back to the cold build). No
//! corruption may panic, error a registration, or change an answer.
//!
//! The matrix drives the real write path, then mutates the on-disk
//! bytes the way crashes and bit rot do: truncation at and inside every
//! section boundary, a flipped bit in every field class (key, sequence,
//! orders, sorted runs, cached answers, pmf ladders, staircase, shard
//! layer, checksums, magic), manifests swapped between pools, a
//! manifest doctored to claim a mutated pool's fingerprint over stale
//! bytes, and version skew in both the manifest and the entry magic.
//! Where a gate would be masked by an outer checksum, the harness
//! re-forges the outer layers (manifest whole-file checksum, section
//! checksum) with the exported [`snapshot_checksum`] so the inner
//! semantic gates are the ones that fire.

use jury_core::juror::{pool_from_rates_and_costs, Juror};
use jury_core::problem::Selection;
use jury_numeric::hash::splitmix64;
use jury_service::{
    snapshot_checksum, DecisionTask, JuryService, PoolId, ServiceConfig, ShardConfig,
};
use serde::{json, Serialize, Value};
use std::fs;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// Fixture plumbing
// ---------------------------------------------------------------------

/// A per-case scratch directory under the system temp root, removed on
/// drop (and pre-cleaned, in case a previous run died mid-case).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("jury-snapshot-faults-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Deterministic pool content: golden-ratio-spread error rates with
/// varied costs, so AltrM, PayM and the staircase all get real work.
fn pool(n: usize) -> Vec<Juror> {
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let x = (i as f64 * 0.618_033_988_749_894_9).fract();
            (0.02 + 0.9 * x, 0.05 + ((i * 7 + 3) % 11) as f64 / 11.0)
        })
        .collect();
    pool_from_rates_and_costs(&pairs).unwrap()
}

fn flat_config() -> ServiceConfig {
    ServiceConfig::default()
}

fn sharded_config() -> ServiceConfig {
    ServiceConfig {
        shard: ShardConfig { threshold: 0, shards: 4, ..Default::default() },
        ..Default::default()
    }
}

fn with_snapshot(mut config: ServiceConfig, dir: &Path) -> ServiceConfig {
    config.snapshot_dir = Some(dir.to_path_buf());
    config
}

/// The comparable footprint of one solve: members plus the exact bits
/// of JER and cost (or the error's text). "Bit-identical" means these
/// are equal for the whole driven stream.
type Outcome = Result<(Vec<usize>, u64, u64), String>;

fn footprint(result: Result<Selection, impl std::fmt::Display>) -> Outcome {
    result.map(|s| (s.members, s.jer.to_bits(), s.total_cost.to_bits())).map_err(|e| e.to_string())
}

/// Drives a fixed task stream that populates every snapshot section:
/// the AltrM answer, the JER profile, the pmf ladder, and a staircase
/// with recorded replays (each budget solved twice). Registration goes
/// through `warm_pool` — the restore-on-register attach point.
fn drive(service: &mut JuryService, pool: PoolId) -> Vec<Outcome> {
    service.warm_pool(pool).unwrap();
    let mut out = Vec::new();
    out.push(footprint(service.solve(&DecisionTask::altruism(pool))));
    for budget in [0.4, 1.1, 2.7, 5.0] {
        for _ in 0..2 {
            out.push(footprint(service.solve(&DecisionTask::pay_as_you_go(pool, budget))));
        }
    }
    service.jer_profile(pool).unwrap();
    out.push(footprint(service.solve(&DecisionTask::altruism(pool))));
    out
}

/// A fresh never-snapshotted service over `jurors`: the control stream
/// every faulted restore must match bit-for-bit.
fn control(config: &ServiceConfig, jurors: &[Juror]) -> Vec<Outcome> {
    let mut service = JuryService::with_config(config.clone());
    let pool = service.create_pool(jurors.to_vec());
    drive(&mut service, pool)
}

/// Builds, drives and snapshots a service into `dir`, returning the
/// driven stream (the snapshot covers every artifact the drive built).
fn seed_snapshot(dir: &Path, config: &ServiceConfig, jurors: &[Juror]) -> Vec<Outcome> {
    let mut service = JuryService::with_config(config.clone());
    let pool = service.create_pool(jurors.to_vec());
    let out = drive(&mut service, pool);
    let report = service.snapshot(dir).unwrap();
    assert!(report.entries >= 1, "seed snapshot persisted nothing");
    out
}

/// The core fault assertion: a service pointed at the (damaged)
/// directory must answer exactly like the control, restore nothing,
/// and count at least one rejection.
fn assert_cold_fallback(
    dir: &Path,
    config: &ServiceConfig,
    jurors: &[Juror],
    control: &[Outcome],
    what: &str,
) {
    let mut service = JuryService::with_config(with_snapshot(config.clone(), dir));
    let pool = service.create_pool(jurors.to_vec());
    let out = drive(&mut service, pool);
    assert_eq!(out, control, "{what}: answers drifted from the never-snapshotted control");
    let stats = service.stats();
    assert_eq!(stats.snapshot_restores, 0, "{what}: a damaged snapshot must not restore");
    assert!(stats.snapshot_rejections >= 1, "{what}: the rejection must be counted");
}

// ---------------------------------------------------------------------
// On-disk surgery
// ---------------------------------------------------------------------

/// The highest-generation manifest in `dir` — the one a reader loads
/// first, and therefore the one every forgery must overwrite.
fn manifest_path(dir: &Path) -> PathBuf {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        let generation = if name == "manifest.json" {
            Some(0)
        } else {
            name.strip_prefix("manifest-")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|g| g.parse::<u64>().ok())
        };
        if let Some(generation) = generation {
            if best.as_ref().is_none_or(|(b, _)| generation > *b) {
                best = Some((generation, path));
            }
        }
    }
    best.expect("no manifest in dir").1
}

/// The single `art-*.snap` entry file of a one-pool snapshot.
fn entry_file(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one entry file in {dir:?}");
    files.pop().unwrap()
}

/// Re-forges the manifest's per-entry `bytes`/`checksum` from whatever
/// is on disk right now, so mutations pass the whole-file gate and the
/// *inner* verification gates are the ones exercised.
fn reforge_manifest(dir: &Path) {
    let old = json::parse(&fs::read_to_string(manifest_path(dir)).unwrap()).unwrap();
    let mut entries = Vec::new();
    for entry in old.get("entries").unwrap().as_array().unwrap() {
        let file = entry.get("file").unwrap().as_str().unwrap().to_string();
        let bytes = fs::read(dir.join(&file)).unwrap();
        entries.push(reforged_entry(entry, file, &bytes));
    }
    write_manifest(dir, entries);
}

/// One manifest entry with `file` (re)assigned and `bytes`/`checksum`
/// recomputed from the actual file contents; identity fields (lanes,
/// len, layout, config) carried over from `from`.
fn reforged_entry(from: &Value, file: String, bytes: &[u8]) -> Value {
    let mut fields = vec![
        ("file", Value::String(file)),
        ("lanes", from.get("lanes").unwrap().clone()),
        ("len", from.get("len").unwrap().clone()),
        ("layout", from.get("layout").unwrap().clone()),
    ];
    if let Some(shards) = from.get("shards") {
        fields.push(("shards", shards.clone()));
    }
    fields.push(("config", from.get("config").unwrap().clone()));
    fields.push(("bytes", Value::String(format!("{:016x}", bytes.len()))));
    fields.push(("checksum", Value::String(format!("{:016x}", snapshot_checksum(bytes)))));
    Value::object(fields)
}

fn write_manifest(dir: &Path, entries: Vec<Value>) {
    let manifest = Value::object([
        ("format", Value::String("jury-snapshot".to_string())),
        ("version", 1u64.to_value()),
        ("entries", Value::Array(entries)),
    ]);
    fs::write(manifest_path(dir), json::to_string(&manifest)).unwrap();
}

/// One section of an entry file, by byte offsets into the file.
struct Section {
    tag: u32,
    /// Offset of the `[tag][len]` header.
    header: usize,
    /// Offset of the payload.
    payload: usize,
    len: usize,
    /// Offset of the trailing checksum.
    checksum: usize,
}

/// Walks the `[tag][len][payload][checksum]` stream after the magic —
/// the same framing the decoder parses, reimplemented independently so
/// the harness does not trust the code under test for its offsets.
fn sections_of(bytes: &[u8]) -> Vec<Section> {
    let mut off = 8;
    let mut out = Vec::new();
    loop {
        let tag = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap()) as usize;
        let payload = off + 12;
        let checksum = payload + len;
        out.push(Section { tag, header: off, payload, len, checksum });
        off = checksum + 8;
        if tag == 0 {
            assert_eq!(off, bytes.len(), "END section must land at end-of-file");
            return out;
        }
    }
}

/// Recomputes a section's trailing checksum after its payload was
/// mutated, so the semantic gates behind the checksum fire.
fn reseal_section(bytes: &mut [u8], section: &Section) {
    let sum = splitmix64(
        snapshot_checksum(&bytes[section.payload..section.payload + section.len])
            ^ u64::from(section.tag),
    );
    bytes[section.checksum..section.checksum + 8].copy_from_slice(&sum.to_le_bytes());
}

fn section_name(tag: u32) -> &'static str {
    match tag {
        0 => "END",
        1 => "KEY",
        2 => "SEQ",
        3 => "EPS_ORDER",
        4 => "GREEDY_ORDER",
        5 => "EPS_SORTED",
        6 => "ALTR",
        7 => "PROFILE",
        8 => "LADDER",
        9 => "STAIRCASE",
        10 => "SHARDS",
        _ => "UNKNOWN",
    }
}

// ---------------------------------------------------------------------
// The matrix
// ---------------------------------------------------------------------

/// Pristine snapshots restore: answers stay bit-identical to a cold
/// service while `snapshot_restores` proves the warm path was taken —
/// for both the flat and the sharded layout.
#[test]
fn pristine_snapshot_restores_bit_identically() {
    for (name, config) in [("flat", flat_config()), ("sharded", sharded_config())] {
        let tmp = TempDir::new(&format!("happy-{name}"));
        let jurors = pool(24);
        let cold = control(&config, &jurors);
        let seeded = seed_snapshot(tmp.path(), &config, &jurors);
        assert_eq!(seeded, cold, "{name}: the seeding run itself must match the control");

        let mut restored = JuryService::with_config(with_snapshot(config.clone(), tmp.path()));
        let pool_id = restored.create_pool(jurors.clone());
        let out = drive(&mut restored, pool_id);
        assert_eq!(out, cold, "{name}: restored answers must be bit-identical");
        let stats = restored.stats();
        assert!(stats.snapshot_restores >= 1, "{name}: restore must actually happen");
        assert_eq!(stats.snapshot_rejections, 0, "{name}: a pristine snapshot rejects nothing");
    }
}

/// Content the snapshot never saw is a plain miss: no restore, but also
/// no counted rejection (nothing was promised).
#[test]
fn unknown_content_is_a_plain_miss_not_a_rejection() {
    let tmp = TempDir::new("plain-miss");
    let config = flat_config();
    seed_snapshot(tmp.path(), &config, &pool(24));

    let novel = pool(31);
    let cold = control(&config, &novel);
    let mut service = JuryService::with_config(with_snapshot(config.clone(), tmp.path()));
    let pool_id = service.create_pool(novel.clone());
    assert_eq!(drive(&mut service, pool_id), cold);
    let stats = service.stats();
    assert_eq!(stats.snapshot_restores, 0);
    assert_eq!(stats.snapshot_rejections, 0, "an honest miss is not a rejection");
}

/// Truncation at and inside every section boundary. With a stale
/// manifest the whole-file gate fires; with a re-forged manifest the
/// framing walk itself must reject the torn tail.
#[test]
fn truncation_at_every_section_boundary_falls_back_cold() {
    let tmp = TempDir::new("truncate");
    let config = flat_config();
    let jurors = pool(24);
    let cold = control(&config, &jurors);
    seed_snapshot(tmp.path(), &config, &jurors);
    let file = entry_file(tmp.path());
    let pristine = fs::read(&file).unwrap();

    // A crash torn mid-write with the *old* manifest still in place:
    // the manifest's length/checksum claim catches it.
    fs::write(&file, &pristine[..pristine.len() / 2]).unwrap();
    assert_cold_fallback(tmp.path(), &config, &jurors, &cold, "truncation, stale manifest");

    let mut cuts: Vec<(usize, String)> = Vec::new();
    for section in sections_of(&pristine) {
        let name = section_name(section.tag);
        cuts.push((section.header, format!("cut at {name} header")));
        cuts.push((section.payload, format!("cut at {name} payload start")));
        cuts.push((section.payload + section.len / 2, format!("cut mid-{name}")));
        cuts.push((section.checksum, format!("cut at {name} checksum")));
    }
    cuts.push((pristine.len() - 1, "cut one byte short of EOF".to_string()));
    cuts.push((4, "cut inside the magic".to_string()));
    for (at, what) in cuts {
        fs::write(&file, &pristine[..at]).unwrap();
        reforge_manifest(tmp.path());
        assert_cold_fallback(tmp.path(), &config, &jurors, &cold, &what);
    }

    // Restoring the pristine bytes heals the directory completely.
    fs::write(&file, &pristine).unwrap();
    reforge_manifest(tmp.path());
    let mut healed = JuryService::with_config(with_snapshot(config.clone(), tmp.path()));
    let pool_id = healed.create_pool(jurors.clone());
    assert_eq!(drive(&mut healed, pool_id), cold);
    assert!(healed.stats().snapshot_restores >= 1, "pristine bytes restore again");
}

/// One flipped bit per field class. Each section is hit twice: once
/// with only the manifest re-forged (the section checksum must fire)
/// and once with the section checksum also re-forged (the semantic
/// gate behind it — key equality, permutation, ε binding, pmf re-hash,
/// JSON validity, shard-owner binding — must fire).
#[test]
fn one_flipped_bit_per_field_class_falls_back_cold() {
    for (name, config) in [("flat", flat_config()), ("sharded", sharded_config())] {
        let tmp = TempDir::new(&format!("bitflip-{name}"));
        let jurors = pool(24);
        let cold = control(&config, &jurors);
        seed_snapshot(tmp.path(), &config, &jurors);
        let file = entry_file(tmp.path());
        let pristine = fs::read(&file).unwrap();

        for section in sections_of(&pristine) {
            let sect = section_name(section.tag);
            // Per-section flip target: an offset whose corruption a
            // semantic gate is *guaranteed* to catch once checksums are
            // re-forged (first key lane / first order index / first ε
            // word / leading JSON byte / a ladder's stored pmf hash /
            // the first shard-owner word).
            let at = match sect {
                "END" => continue, // zero-length payload; framing covered by truncation
                "LADDER" => section.payload + 16,
                "SHARDS" => section.payload + 8,
                _ => section.payload,
            };

            let mut flipped = pristine.clone();
            flipped[at] ^= 0x01;
            fs::write(&file, &flipped).unwrap();
            reforge_manifest(tmp.path());
            assert_cold_fallback(
                tmp.path(),
                &config,
                &jurors,
                &cold,
                &format!("{name}: bit flip in {sect}, section checksum stale"),
            );

            reseal_section(&mut flipped, &section);
            fs::write(&file, &flipped).unwrap();
            reforge_manifest(tmp.path());
            assert_cold_fallback(
                tmp.path(),
                &config,
                &jurors,
                &cold,
                &format!("{name}: bit flip in {sect}, semantic gate"),
            );
        }

        // A flipped bit in a section *checksum* itself.
        let some = &sections_of(&pristine)[1];
        let mut flipped = pristine.clone();
        flipped[some.checksum] ^= 0x01;
        fs::write(&file, &flipped).unwrap();
        reforge_manifest(tmp.path());
        assert_cold_fallback(tmp.path(), &config, &jurors, &cold, "flipped section checksum");

        // A flipped bit in the magic / format version.
        let mut flipped = pristine.clone();
        flipped[7] ^= 0x01; // b"JRYSNP01" -> b"JRYSNP00": version skew
        fs::write(&file, &flipped).unwrap();
        reforge_manifest(tmp.path());
        assert_cold_fallback(tmp.path(), &config, &jurors, &cold, "entry-file version skew");
    }
}

/// Manifests swapped between two pools: each entry's identity fields
/// now point at the *other* pool's bytes. The whole-file gate passes by
/// construction (lengths and checksums re-forged), so the embedded-key
/// cross-check is what must refuse the forgery — for both pools.
#[test]
fn swapped_manifest_entries_fall_back_cold() {
    let tmp = TempDir::new("swap");
    let config = flat_config();
    let jurors_a = pool(24);
    let jurors_b = pool(25);
    let cold_a = control(&config, &jurors_a);
    let cold_b = control(&config, &jurors_b);

    // One service, two pools, one snapshot with two entries.
    let mut seeder = JuryService::with_config(config.clone());
    let pa = seeder.create_pool(jurors_a.clone());
    let pb = seeder.create_pool(jurors_b.clone());
    drive(&mut seeder, pa);
    drive(&mut seeder, pb);
    let report = seeder.snapshot(tmp.path()).unwrap();
    assert_eq!(report.entries, 2, "two distinct pools, two entries");

    let old = json::parse(&fs::read_to_string(manifest_path(tmp.path())).unwrap()).unwrap();
    let entries = old.get("entries").unwrap().as_array().unwrap();
    assert_eq!(entries.len(), 2);
    let file_0 = entries[0].get("file").unwrap().as_str().unwrap().to_string();
    let file_1 = entries[1].get("file").unwrap().as_str().unwrap().to_string();
    let bytes_0 = fs::read(tmp.path().join(&file_0)).unwrap();
    let bytes_1 = fs::read(tmp.path().join(&file_1)).unwrap();
    // Entry 0's identity now claims entry 1's file and vice versa, with
    // lengths and checksums consistent with the swapped files.
    write_manifest(
        tmp.path(),
        vec![
            reforged_entry(&entries[0], file_1, &bytes_1),
            reforged_entry(&entries[1], file_0, &bytes_0),
        ],
    );

    assert_cold_fallback(tmp.path(), &config, &jurors_a, &cold_a, "swapped manifest, pool A");
    assert_cold_fallback(tmp.path(), &config, &jurors_b, &cold_b, "swapped manifest, pool B");
}

/// A snapshot of a pool's *past* doctored to claim its mutated present:
/// the manifest advertises the post-mutation fingerprint over the
/// pre-mutation bytes. The embedded key refuses the replay.
#[test]
fn mutated_past_replay_falls_back_cold() {
    let tmp = TempDir::new("mutated-past");
    let config = flat_config();
    let jurors = pool(24);

    let mut service = JuryService::with_config(config.clone());
    let pool_id = service.create_pool(jurors.clone());
    drive(&mut service, pool_id);
    service.snapshot(tmp.path()).unwrap();

    // Mutate the pool past the snapshot, then capture its new content
    // and fingerprint — the "present" the stale bytes will impersonate.
    let extra = pool_from_rates_and_costs(&[(0.345, 0.21)]).unwrap().pop().unwrap();
    service.insert_juror(pool_id, extra).unwrap();
    let mutated: Vec<Juror> = service.pool(pool_id).unwrap().to_vec();
    let fp = service.fingerprint(pool_id).unwrap();
    let cold = control(&config, &mutated);

    let old = json::parse(&fs::read_to_string(manifest_path(tmp.path())).unwrap()).unwrap();
    let entry = &old.get("entries").unwrap().as_array().unwrap()[0];
    let file = entry.get("file").unwrap().as_str().unwrap().to_string();
    let bytes = fs::read(tmp.path().join(&file)).unwrap();
    let mut forged = reforged_entry(entry, file, &bytes);
    // Overwrite the identity fields with the mutated pool's.
    let fields = vec![
        ("file", forged.get("file").unwrap().clone()),
        (
            "lanes",
            Value::Array(vec![
                Value::String(format!("{:016x}", fp.lanes[0])),
                Value::String(format!("{:016x}", fp.lanes[1])),
            ]),
        ),
        ("len", Value::String(format!("{:016x}", fp.len))),
        ("layout", forged.get("layout").unwrap().clone()),
        ("config", forged.get("config").unwrap().clone()),
        ("bytes", forged.get("bytes").unwrap().clone()),
        ("checksum", forged.get("checksum").unwrap().clone()),
    ];
    forged = Value::object(fields);
    write_manifest(tmp.path(), vec![forged]);

    assert_cold_fallback(tmp.path(), &config, &mutated, &cold, "mutated-past replay");
}

/// Manifest-level damage: version skew poisons the catalog (every
/// attempt is a counted rejection), corrupt JSON likewise, and a
/// manifest entry whose layout/config no longer matches the service's
/// registration is config drift — also a counted rejection.
#[test]
fn manifest_skew_and_config_drift_fall_back_cold() {
    let config = flat_config();
    let jurors = pool(24);
    let cold = control(&config, &jurors);

    // Version skew.
    let tmp = TempDir::new("manifest-version");
    seed_snapshot(tmp.path(), &config, &jurors);
    let old = json::parse(&fs::read_to_string(manifest_path(tmp.path())).unwrap()).unwrap();
    let manifest = Value::object([
        ("format", Value::String("jury-snapshot".to_string())),
        ("version", 2u64.to_value()),
        ("entries", old.get("entries").unwrap().clone()),
    ]);
    fs::write(manifest_path(tmp.path()), json::to_string(&manifest)).unwrap();
    assert_cold_fallback(tmp.path(), &config, &jurors, &cold, "manifest version skew");

    // Corrupt JSON.
    let tmp = TempDir::new("manifest-garbage");
    seed_snapshot(tmp.path(), &config, &jurors);
    fs::write(manifest_path(tmp.path()), b"{this is not a manifest").unwrap();
    assert_cold_fallback(tmp.path(), &config, &jurors, &cold, "corrupt manifest JSON");

    // Config drift: the snapshot promised this content under a flat
    // layout; a service registering the same content sharded must get a
    // counted rejection (promised content it cannot deliver), then
    // build cold.
    let tmp = TempDir::new("config-drift");
    seed_snapshot(tmp.path(), &config, &jurors);
    let sharded = sharded_config();
    let cold_sharded = control(&sharded, &jurors);
    assert_cold_fallback(tmp.path(), &sharded, &jurors, &cold_sharded, "layout drift");

    // A missing manifest over intact entry files is an empty catalog:
    // no restore, no rejection — nothing was promised.
    let tmp = TempDir::new("missing-manifest");
    seed_snapshot(tmp.path(), &config, &jurors);
    fs::remove_file(manifest_path(tmp.path())).unwrap();
    let mut service = JuryService::with_config(with_snapshot(config.clone(), tmp.path()));
    let pool_id = service.create_pool(jurors.clone());
    assert_eq!(drive(&mut service, pool_id), cold);
    let stats = service.stats();
    assert_eq!(stats.snapshot_restores, 0);
    assert_eq!(stats.snapshot_rejections, 0, "an absent manifest promises nothing");
}

/// The seeded fixtures must actually contain every section class the
/// bit-flip matrix claims to cover — otherwise the matrix is vacuous.
#[test]
fn seeded_snapshots_cover_every_section_class() {
    let tmp = TempDir::new("coverage-flat");
    seed_snapshot(tmp.path(), &flat_config(), &pool(24));
    let tags: Vec<u32> =
        sections_of(&fs::read(entry_file(tmp.path())).unwrap()).iter().map(|s| s.tag).collect();
    for required in 1..=9u32 {
        assert!(tags.contains(&required), "flat entry lacks {}", section_name(required));
    }

    let tmp = TempDir::new("coverage-sharded");
    seed_snapshot(tmp.path(), &sharded_config(), &pool(24));
    let tags: Vec<u32> =
        sections_of(&fs::read(entry_file(tmp.path())).unwrap()).iter().map(|s| s.tag).collect();
    assert!(tags.contains(&10), "sharded entry lacks SHARDS");
}
