//! Service/solver equivalence properties.
//!
//! The service's contract is that caching and batching are *pure
//! plumbing*: cold-cache, warm-cache and batched solves must return
//! **byte-identical** selections (members, JER bits, cost bits) to
//! direct `AltrAlg::solve` / `PayAlg::solve` calls on the same jurors —
//! including after pool mutations invalidate the cache. PayM stats are
//! byte-identical too (the service replays the exact greedy scan);
//! AltrM stats are documented to differ: the service answers AltrM with
//! the bound-pruned scan, which reports pruned sizes in
//! `pruned_by_bound` instead of evaluating them.

use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_core::model::CrowdModel;
use jury_core::paym::{PayAlg, PayConfig};
use jury_core::problem::Selection;
use jury_service::{DecisionTask, JuryService, ServiceConfig, ServiceError};
use proptest::collection::vec;
use proptest::prelude::*;

/// Random `(ε, cost)` pools: rates strictly inside (0,1), small
/// non-negative costs.
fn pools(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    vec((0.001..0.999f64, 0.0..1.0f64), 1..=max_len)
}

fn build(pairs: &[(f64, f64)]) -> Vec<Juror> {
    pool_from_rates_and_costs(pairs).unwrap()
}

/// Byte-level equality of the selection contract: members, JER bits,
/// cost bits. Stats are pinned only when `compare_stats` is set (PayM
/// paths, and service-vs-service comparisons); on AltrM-vs-direct paths
/// the service's bound-pruned stats instead satisfy the accounting
/// identity `jer_evaluations + pruned_by_bound == full scan's
/// evaluations`.
fn assert_identical(a: &Selection, b: &Selection, compare_stats: bool) {
    assert_eq!(a.members, b.members);
    assert_eq!(a.jer.to_bits(), b.jer.to_bits());
    assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
    if compare_stats {
        assert_eq!(a.stats, b.stats);
    } else {
        assert_eq!(a.stats.candidates_considered, b.stats.candidates_considered);
        assert_eq!(
            a.stats.jer_evaluations + a.stats.pruned_by_bound,
            b.stats.jer_evaluations + b.stats.pruned_by_bound,
            "every candidate size is either evaluated or pruned"
        );
    }
}

fn direct(jurors: &[Juror], model: CrowdModel) -> Result<Selection, jury_core::JuryError> {
    match model {
        CrowdModel::Altruism => AltrAlg::solve(jurors, &AltrConfig::default()),
        CrowdModel::PayAsYouGo { budget } => PayAlg::solve(jurors, budget, &PayConfig::default()),
    }
}

fn check_all_paths(service: &mut JuryService, pool: jury_service::PoolId, budgets: &[f64]) {
    let jurors = service.pool(pool).unwrap().to_vec();
    let mut tasks = vec![DecisionTask::altruism(pool)];
    tasks.extend(budgets.iter().map(|&b| DecisionTask::pay_as_you_go(pool, b)));

    // Cold single solves (cache may have been invalidated by the caller).
    let cold: Vec<_> = tasks.iter().map(|t| service.solve(t)).collect();
    // Warm single solves.
    let warm: Vec<_> = tasks.iter().map(|t| service.solve(t)).collect();
    // Batched solves (several copies interleaved to exercise chunking).
    let mut batch_tasks = tasks.clone();
    batch_tasks.extend(tasks.iter().rev().copied());
    let batched = service.solve_batch(&batch_tasks);

    for (i, task) in tasks.iter().enumerate() {
        let reference = direct(&jurors, task.model);
        let compare_stats = matches!(task.model, CrowdModel::PayAsYouGo { .. });
        for (label, got) in [
            ("cold", &cold[i]),
            ("warm", &warm[i]),
            ("batch-front", &batched[i]),
            ("batch-back", &batched[batch_tasks.len() - 1 - i]),
        ] {
            match (&reference, got) {
                (Ok(want), Ok(have)) => assert_identical(have, want, compare_stats),
                (Err(want), Err(ServiceError::Solver(have))) => {
                    assert_eq!(have, want, "{label}")
                }
                (want, have) => panic!("{label}: direct {want:?} vs service {have:?}"),
            }
        }
    }
}

proptest! {
    #[test]
    fn cold_warm_and_batched_match_direct(pairs in pools(60), budget in 0.0..3.0f64) {
        let mut service = JuryService::new();
        let pool = service.create_pool(build(&pairs));
        check_all_paths(&mut service, pool, &[budget, 0.05, f64::MAX]);
    }

    #[test]
    fn equivalence_survives_mutations(
        pairs in pools(40),
        extra in (0.001..0.999f64, 0.0..1.0f64),
        update in (0.001..0.999f64, 0.0..1.0f64),
        idx in any::<prop::sample::Index>(),
        budget in 0.0..2.0f64,
    ) {
        let mut service = JuryService::new();
        let pool = service.create_pool(build(&pairs));
        // Warm the cache, then mutate through every registry operation,
        // re-checking equivalence against the *current* jurors each time.
        check_all_paths(&mut service, pool, &[budget]);

        let added = service
            .insert_juror(pool, Juror::new(1000, ErrorRate::new(extra.0).unwrap(), extra.1))
            .unwrap();
        assert!(!service.is_warm(pool));
        check_all_paths(&mut service, pool, &[budget]);

        let i = idx.index(service.pool(pool).unwrap().len());
        service
            .update_juror(pool, i, Juror::new(2000, ErrorRate::new(update.0).unwrap(), update.1))
            .unwrap();
        check_all_paths(&mut service, pool, &[budget]);

        service.remove_juror(pool, added.min(service.pool(pool).unwrap().len() - 1)).unwrap();
        check_all_paths(&mut service, pool, &[budget]);
    }

    #[test]
    fn single_threaded_batches_match_parallel(pairs in pools(30), budget in 0.0..2.0f64) {
        let jurors = build(&pairs);
        let mut serial =
            JuryService::with_config(ServiceConfig { threads: 1, ..Default::default() });
        let mut parallel =
            JuryService::with_config(ServiceConfig { threads: 4, ..Default::default() });
        let ps = serial.create_pool(jurors.clone());
        let pp = parallel.create_pool(jurors);
        let tasks_s: Vec<_> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    DecisionTask::altruism(ps)
                } else {
                    DecisionTask::pay_as_you_go(ps, budget + i as f64 / 10.0)
                }
            })
            .collect();
        let tasks_p: Vec<_> = tasks_s
            .iter()
            .map(|t| DecisionTask { pool: pp, model: t.model })
            .collect();
        let rs = serial.solve_batch(&tasks_s);
        let rp = parallel.solve_batch(&tasks_p);
        for (a, b) in rs.iter().zip(&rp) {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_identical(x, y, true),
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                other => panic!("serial/parallel divergence: {other:?}"),
            }
        }
    }
}
