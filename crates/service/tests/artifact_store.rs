//! The warm-artifact store's observable contract: equal-content pools
//! share one artifact set (fingerprints intern, attaches are
//! pointer-equal, counters prove nothing was rebuilt), mutations detach
//! copy-on-write and re-join when content converges again — and none of
//! it ever changes an answer (every shared-artifact reply is pinned
//! bit-identical against the direct solvers).

use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_core::paym::{PayAlg, PayConfig};
use jury_service::{DecisionTask, JuryService, ServiceConfig, ShardConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn build(pairs: &[(f64, f64)]) -> Vec<Juror> {
    pool_from_rates_and_costs(pairs).unwrap()
}

fn private_service() -> JuryService {
    JuryService::with_config(ServiceConfig { share_artifacts: false, ..Default::default() })
}

/// Random `(ε, cost)` pools with quantised rates (so equal-ε ties occur
/// routinely, both tie-free and tie-violating) and a sprinkling of the
/// adversarial rates the deconvolution proptests use (½ ± 1e-12 and the
/// near-0/1 boundary values).
fn pools(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    vec((0.001..0.999f64, 0.0..1.0f64), 1..=max_len).prop_map(|mut pairs| {
        const ADVERSARIAL: [f64; 5] = [1e-12, 1.0 - 1e-12, 0.5, 0.5 + 1e-12, 0.5 - 1e-12];
        for (i, (e, c)) in pairs.iter_mut().enumerate() {
            if i % 3 == 0 {
                *e = (*e * 16.0).ceil() / 16.0 - 1.0 / 32.0;
                *c = (*c * 4.0).floor() / 4.0;
            }
            if i % 5 == 4 {
                *e = ADVERSARIAL[(i / 5) % ADVERSARIAL.len()];
            }
        }
        pairs
    })
}

/// Deterministic Fisher–Yates driven by an xorshift stream.
fn shuffled<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    seed |= 1;
    for i in (1..out.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        out.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    out
}

/// Whether no two jurors share ε bits with different cost bits — the
/// documented precondition for cross-permutation sharing.
fn tie_free(jurors: &[Juror]) -> bool {
    jurors.iter().enumerate().all(|(i, a)| {
        jurors[..i].iter().all(|b| {
            a.epsilon().to_bits() != b.epsilon().to_bits() || a.cost.to_bits() == b.cost.to_bits()
        })
    })
}

/// Asserts a service AltrM reply matches the direct solver bit-for-bit
/// (members/JER/cost; stats follow the documented bound-pruned
/// accounting identity).
fn assert_altr_matches_direct(service: &mut JuryService, pool: jury_service::PoolId, ctx: &str) {
    let got = service.solve(&DecisionTask::altruism(pool)).unwrap_or_else(|e| {
        panic!("{ctx}: altr solve failed: {e}");
    });
    let direct =
        AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).expect("direct altr");
    assert_eq!(got.members, direct.members, "{ctx}: members");
    assert_eq!(got.jer.to_bits(), direct.jer.to_bits(), "{ctx}: jer bits");
    assert_eq!(got.total_cost.to_bits(), direct.total_cost.to_bits(), "{ctx}: cost bits");
    assert_eq!(
        got.stats.jer_evaluations + got.stats.pruned_by_bound,
        direct.stats.jer_evaluations + direct.stats.pruned_by_bound,
        "{ctx}: every size evaluated or pruned"
    );
}

/// Asserts a service PayM reply matches the direct solver bit-for-bit
/// (both the recording miss and the staircase replay).
fn assert_paym_matches_direct(
    service: &mut JuryService,
    pool: jury_service::PoolId,
    budget: f64,
    ctx: &str,
) {
    let direct = PayAlg::solve(service.pool(pool).unwrap(), budget, &PayConfig::default());
    for round in ["miss", "replay"] {
        let got = service.solve(&DecisionTask::pay_as_you_go(pool, budget));
        match (&got, &direct) {
            (Ok(g), Ok(w)) => {
                assert_eq!(g.members, w.members, "{ctx} {round}: members");
                assert_eq!(g.jer.to_bits(), w.jer.to_bits(), "{ctx} {round}: jer bits");
                assert_eq!(
                    g.total_cost.to_bits(),
                    w.total_cost.to_bits(),
                    "{ctx} {round}: cost bits"
                );
                assert_eq!(g.stats, w.stats, "{ctx} {round}: stats");
            }
            (Err(g), Err(w)) => {
                assert_eq!(g.to_string(), format!("solver error: {w}"), "{ctx} {round}")
            }
            other => panic!("{ctx} {round}: divergence: {other:?}"),
        }
    }
}

#[test]
fn second_equal_pool_registers_with_zero_builds() {
    // The counter gate: registering and first-solving a second pool with
    // equal content must attach — no order build, no ladder build, no
    // AltrM solve, no full repair.
    let jurors = build(&[(0.1, 0.2), (0.2, 0.1), (0.2, 0.3), (0.35, 0.4), (0.4, 0.05)]);
    let mut service = JuryService::new();
    let a = service.create_pool(jurors.clone());
    let first = service.solve(&DecisionTask::altruism(a)).unwrap();
    let after_first = service.stats();
    assert_eq!(after_first.cache_builds, 1);
    assert_eq!(after_first.full_repairs, 1);
    assert_eq!(after_first.artifact_share_hits, 0, "the founder builds");

    let b = service.create_pool(jurors.clone());
    assert_eq!(service.fingerprint(a).unwrap(), service.fingerprint(b).unwrap());
    let second = service.solve(&DecisionTask::altruism(b)).unwrap();
    let stats = service.stats();
    assert_eq!(stats.cache_builds, after_first.cache_builds, "second pool must not build");
    assert_eq!(stats.full_repairs, after_first.full_repairs, "second pool must not full-repair");
    assert_eq!(stats.artifact_share_hits, 1, "second pool attaches");
    assert!(service.shares_artifacts_with(a, b).unwrap(), "one interned artifact set");
    assert_eq!(service.artifact_entries(), 1);
    assert_eq!(first, second);
    assert_eq!(first.jer.to_bits(), second.jer.to_bits());

    // The shared answer is literally one allocation across pools.
    let shared = service
        .solve_batch_shared(&[DecisionTask::altruism(a), DecisionTask::altruism(b)])
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    assert!(Arc::ptr_eq(&shared[0], &shared[1]), "cross-pool replays share the cached Arc");

    // The shared ladder answers probes for both pools identically.
    let pa = service.jer_probe(a, 3).unwrap();
    let pb = service.jer_probe(b, 3).unwrap();
    assert_eq!(pa.to_bits(), pb.to_bits());

    // PayM rides one shared staircase: a's recording scan is b's hit.
    let hits_before = service.stats().staircase_hits;
    service.solve(&DecisionTask::pay_as_you_go(a, 0.6)).unwrap();
    service.solve(&DecisionTask::pay_as_you_go(b, 0.6)).unwrap();
    assert_eq!(
        service.stats().staircase_hits,
        hits_before + 1,
        "the sibling replays the recorded step"
    );
}

#[test]
fn perturbation_detaches_and_mutating_back_rejoins() {
    let jurors = build(&[
        (0.5, 0.2),
        (0.5 + 1e-12, 0.2),
        (0.1, 0.4),
        (1e-12, 0.9),
        (1.0 - 1e-12, 0.05),
        (0.3, 0.3),
    ]);
    let mut service = JuryService::new();
    let a = service.create_pool(jurors.clone());
    let b = service.create_pool(jurors.clone());
    service.warm_pool(a).unwrap();
    service.warm_pool(b).unwrap();
    assert!(service.shares_artifacts_with(a, b).unwrap());
    let fp_before = service.fingerprint(a).unwrap();

    // An ulp-level ε perturbation is new content: the pool detaches.
    let perturbed = Juror::new(77, ErrorRate::new(0.5 - 1e-12).unwrap(), jurors[0].cost);
    service.update_juror(a, 0, perturbed).unwrap();
    assert_ne!(service.fingerprint(a).unwrap(), fp_before, "content changed");
    assert_eq!(service.fingerprint(b).unwrap(), fp_before, "sibling untouched");
    assert!(!service.shares_artifacts_with(a, b).unwrap(), "mutation must detach");
    assert_eq!(service.stats().artifact_detaches, 1);
    assert_eq!(service.stats().artifact_rejoins, 0);
    assert_altr_matches_direct(&mut service, a, "detached pool");
    assert_altr_matches_direct(&mut service, b, "surviving sibling");

    // Mutating back restores the fingerprint exactly and re-joins the
    // sibling's entry (content-verified, not hash-trusted).
    service.update_juror(a, 0, jurors[0]).unwrap();
    assert_eq!(service.fingerprint(a).unwrap(), fp_before);
    assert!(service.shares_artifacts_with(a, b).unwrap(), "equal content re-joins");
    assert_eq!(service.stats().artifact_detaches, 2, "the re-join began as a detach");
    assert_eq!(service.stats().artifact_rejoins, 1);
    assert_altr_matches_direct(&mut service, a, "re-joined pool");
    assert_paym_matches_direct(&mut service, a, 0.8, "re-joined pool");
}

#[test]
fn identically_mutated_siblings_follow_published_entries() {
    // A detaches from siblings → publishes its repaired artifacts under
    // the new key; B mutating the same way re-joins that entry instead
    // of re-repairing alone.
    let jurors = build(&[(0.12, 0.3), (0.2, 0.2), (0.31, 0.1), (0.44, 0.6), (0.08, 0.9)]);
    let mut service = JuryService::new();
    let a = service.create_pool(jurors.clone());
    let b = service.create_pool(jurors.clone());
    service.warm_pool(a).unwrap();
    service.warm_pool(b).unwrap();
    assert_eq!(service.artifact_entries(), 1);

    let edit = Juror::new(50, ErrorRate::new(0.27).unwrap(), 0.15);
    service.update_juror(a, 2, edit).unwrap();
    assert!(!service.shares_artifacts_with(a, b).unwrap());
    assert_eq!(service.artifact_entries(), 2, "repaired artifacts published under the new key");
    service.update_juror(b, 2, edit).unwrap();
    assert!(service.shares_artifacts_with(a, b).unwrap(), "identical mutation re-joins");
    assert_eq!(service.stats().artifact_rejoins, 1);
    assert_eq!(service.artifact_entries(), 1, "the abandoned entry is evicted");
    assert_altr_matches_direct(&mut service, a, "publisher");
    assert_altr_matches_direct(&mut service, b, "follower");
}

#[test]
fn reversed_pool_shares_artifacts_and_translates_orders() {
    // A deterministic permuted attach: reversal with ε ties (equal
    // cost, so tie-free). The permuted pool's orders, answers and
    // staircase-served PayM selections must be bit-identical to its own
    // direct solves, while the rank-space artifacts stay pointer-shared.
    let pairs =
        [(0.3, 0.2), (0.1, 0.5), (0.3, 0.2), (0.45, 0.1), (0.2, 0.9), (0.2, 0.9), (0.05, 0.4)];
    let jurors = build(&pairs);
    let mut reversed = jurors.clone();
    reversed.reverse();
    let mut service = JuryService::new();
    let a = service.create_pool(jurors);
    let b = service.create_pool(reversed.clone());
    service.warm_pool(a).unwrap();
    service.warm_pool(b).unwrap();
    assert!(service.shares_artifacts_with(a, b).unwrap(), "reversal is a tie-free permutation");
    assert_eq!(service.stats().artifact_share_hits, 1);
    // The translated ε order equals the permuted pool's own sort.
    let mut own_order = Vec::new();
    jury_core::solver::sorted_order_into(&reversed, &mut own_order);
    assert_eq!(service.reliability_order(b).unwrap(), own_order.as_slice());
    assert_altr_matches_direct(&mut service, b, "reversed pool");
    for budget in [0.0, 0.35, 0.81, 2.0, f64::MAX] {
        assert_paym_matches_direct(&mut service, b, budget, "reversed pool");
    }
}

#[test]
fn permuted_solver_publishes_the_answer_for_later_attachers() {
    // A publishes an orders-only entry (probe warming); permuted B runs
    // the first AltrM solve and must translate it back into founding
    // space so an identical-to-A pool C replays instead of re-solving.
    let jurors = build(&[(0.3, 0.2), (0.1, 0.5), (0.22, 0.3), (0.45, 0.1), (0.05, 0.4)]);
    let mut reversed = jurors.clone();
    reversed.reverse();
    let mut service = JuryService::new();
    let a = service.create_pool(jurors.clone());
    service.jer_probe(a, 1).unwrap(); // orders-only entry, no AltrM answer yet
    assert_eq!(service.stats().cache_builds, 0, "probe warming builds no solved artifacts");

    let b = service.create_pool(reversed);
    assert_altr_matches_direct(&mut service, b, "permuted first solver");
    let builds_after_b = service.stats().cache_builds;

    let c = service.create_pool(jurors.clone());
    assert_altr_matches_direct(&mut service, c, "founding-sequence follower");
    assert_eq!(
        service.stats().cache_builds,
        builds_after_b,
        "the follower replays the permuted solver's published answer"
    );
    // And the founding pool itself replays it too.
    assert_altr_matches_direct(&mut service, a, "founding pool");
    assert_eq!(service.stats().cache_builds, builds_after_b);
}

#[test]
fn refused_attach_never_clobbers_the_incumbent_entry() {
    // Tie-violating content (equal ε, different costs): permuted
    // arrangements can never share, and a refused attach must leave the
    // incumbent entry in place — the permuted pool stays private
    // instead of publishing over its siblings' entry, so
    // identical-sequence attachers keep sharing.
    let jurors = build(&[(0.2, 0.1), (0.2, 0.9), (0.1, 0.3), (0.35, 0.2)]);
    let mut reversed = jurors.clone();
    reversed.reverse();
    let mut service = JuryService::new();
    let a = service.create_pool(jurors.clone());
    let b = service.create_pool(reversed);
    let c = service.create_pool(jurors.clone());
    service.warm_pool(a).unwrap();
    service.warm_pool(b).unwrap();
    assert_eq!(service.fingerprint(a).unwrap(), service.fingerprint(b).unwrap());
    assert!(!service.shares_artifacts_with(a, b).unwrap(), "tie-violating permutation refused");
    assert_eq!(service.artifact_entries(), 1, "the refused pool must not clobber the entry");
    service.warm_pool(c).unwrap();
    assert!(service.shares_artifacts_with(a, c).unwrap(), "identical pools keep sharing");
    assert_eq!(service.stats().artifact_share_hits, 1);
    assert_altr_matches_direct(&mut service, b, "refused permuted pool");
}

#[test]
fn cloned_services_keep_independent_stores() {
    // Cloning a service deep-copies the store: the clone's pools hold
    // fresh entry handles, so eviction and sole-owner detach accounting
    // in either service never sees the other's references.
    let jurors = build(&[(0.15, 0.3), (0.28, 0.2), (0.4, 0.1), (0.07, 0.8)]);
    let mut original = JuryService::new();
    let p1 = original.create_pool(jurors.clone());
    let p2 = original.create_pool(jurors.clone());
    original.warm_pool(p1).unwrap();
    original.warm_pool(p2).unwrap();
    assert_eq!(original.artifact_entries(), 1);

    let mut cloned = original.clone();
    assert_eq!(cloned.artifact_entries(), 1);
    assert!(cloned.shares_artifacts_with(p1, p2).unwrap(), "attachments survive the clone");

    // Mutate both of the clone's pools away from the founding content:
    // p1 detaches with a sibling (publishes the repaired artifacts),
    // p2's detach leaves the founding entry orphaned — it must be
    // evicted from the clone's store despite the original's references.
    cloned.update_juror(p1, 0, Juror::new(70, ErrorRate::new(0.33).unwrap(), 0.3)).unwrap();
    cloned.update_juror(p2, 1, Juror::new(71, ErrorRate::new(0.21).unwrap(), 0.2)).unwrap();
    assert_eq!(cloned.artifact_entries(), 1, "founding entry evicted, p1's publication interned");
    assert_eq!(original.artifact_entries(), 1, "the original is untouched");
    assert!(original.shares_artifacts_with(p1, p2).unwrap());

    // Both services keep answering bit-identically for their own state.
    assert_altr_matches_direct(&mut cloned, p1, "clone p1");
    assert_altr_matches_direct(&mut cloned, p2, "clone p2");
    assert_altr_matches_direct(&mut original, p1, "original p1");
    assert_paym_matches_direct(&mut original, p2, 0.7, "original p2");
}

#[test]
fn removing_pools_evicts_orphaned_entries() {
    let jurors = build(&[(0.2, 0.4), (0.3, 0.1), (0.15, 0.7)]);
    let mut service = JuryService::new();
    let a = service.create_pool(jurors.clone());
    let b = service.create_pool(jurors.clone());
    service.warm_pool(a).unwrap();
    service.warm_pool(b).unwrap();
    assert_eq!(service.artifact_entries(), 1);
    service.remove_pool(a).unwrap();
    assert_eq!(service.artifact_entries(), 1, "the sibling keeps the entry alive");
    service.remove_pool(b).unwrap();
    assert_eq!(service.artifact_entries(), 0, "the last holder's removal evicts");
}

#[test]
fn sharded_equal_pools_share_merged_artifacts() {
    let rates: Vec<(f64, f64)> =
        (0..40).map(|i| (0.05 + (i as f64) / 50.0, ((i * 13) % 7) as f64 / 7.0)).collect();
    let jurors = build(&rates);
    let config = ServiceConfig {
        shard: ShardConfig { threshold: 1, shards: 4, ..Default::default() },
        ..Default::default()
    };
    let mut service = JuryService::with_config(config);
    let a = service.create_pool(jurors.clone());
    let b = service.create_pool(jurors.clone());
    assert_eq!(service.is_sharded(a), Ok(true));
    assert_altr_matches_direct(&mut service, a, "founding sharded pool");
    let builds_after_a = service.stats().cache_builds;
    assert_altr_matches_direct(&mut service, b, "attached sharded pool");
    let stats = service.stats();
    assert_eq!(stats.cache_builds, builds_after_a, "no second K-way merge");
    assert_eq!(stats.artifact_share_hits, 1);
    assert!(service.shares_artifacts_with(a, b).unwrap());
    // The profile is built once and seeded to the sibling, bit-identical.
    let pa = service.jer_profile(a).unwrap().to_vec();
    let pb = service.jer_profile(b).unwrap().to_vec();
    for ((na, ja), (nb, jb)) in pa.iter().zip(&pb) {
        assert_eq!(na, nb);
        assert_eq!(ja.to_bits(), jb.to_bits());
    }
    // A mutation detaches only the mutated pool; both keep answering
    // bit-identically.
    service.update_juror(a, 3, Juror::new(90, ErrorRate::new(0.42).unwrap(), 0.3)).unwrap();
    assert!(!service.shares_artifacts_with(a, b).unwrap());
    assert_altr_matches_direct(&mut service, a, "detached sharded pool");
    assert_altr_matches_direct(&mut service, b, "surviving sharded sibling");
    assert_paym_matches_direct(&mut service, a, 1.3, "detached sharded pool");
}

#[test]
fn promotion_of_a_shared_pool_discards_the_attachment_cleanly() {
    // Crossing the shard threshold replaces the flat cache wholesale:
    // the shared attachment is dropped (no private copy is ever
    // materialised), the sibling keeps the entry, and both pools keep
    // answering bit-identically.
    let jurors = build(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4), (0.25, 0.3)]);
    let config = ServiceConfig {
        shard: ShardConfig { threshold: 6, shards: 3, ..Default::default() },
        ..Default::default()
    };
    let mut service = JuryService::with_config(config);
    let a = service.create_pool(jurors.clone());
    let b = service.create_pool(jurors.clone());
    service.warm_pool(a).unwrap();
    service.warm_pool(b).unwrap();
    assert!(service.shares_artifacts_with(a, b).unwrap());

    service.insert_juror(a, Juror::new(10, ErrorRate::new(0.15).unwrap(), 0.2)).unwrap();
    assert_eq!(service.is_sharded(a), Ok(false), "below threshold stays flat");
    service.insert_juror(a, Juror::new(11, ErrorRate::new(0.18).unwrap(), 0.1)).unwrap();
    assert_eq!(service.is_sharded(a), Ok(true), "crossing the threshold promotes");
    assert!(!service.shares_artifacts_with(a, b).unwrap(), "layouts diverged");
    assert!(service.artifact_entries() >= 1, "the sibling keeps its flat entry");
    assert_altr_matches_direct(&mut service, a, "promoted pool");
    assert_altr_matches_direct(&mut service, b, "flat sibling");
    assert_paym_matches_direct(&mut service, b, 0.5, "flat sibling");
}

#[test]
fn ttl_policy_keeps_sole_holder_orphans_warm_for_rejoin() {
    // Under the default refcount policy a sole holder's detach reclaims
    // the entry zero-copy, so perturb-and-restore on a *single* pool can
    // never re-join — the entry is gone. With a TTL the entry survives
    // the detach as a stamped orphan and the restoring mutation re-joins
    // it, warm artifacts intact.
    let jurors = build(&[(0.12, 0.3), (0.2, 0.2), (0.31, 0.1), (0.44, 0.6), (0.08, 0.9)]);

    let mut refcount = JuryService::new();
    let p = refcount.create_pool(jurors.clone());
    refcount.warm_pool(p).unwrap();
    let perturbed = Juror::new(91, ErrorRate::new(0.45).unwrap(), 0.2);
    refcount.update_juror(p, 2, perturbed).unwrap();
    refcount.update_juror(p, 2, jurors[2]).unwrap();
    assert_eq!(refcount.stats().artifact_rejoins, 0, "refcount policy reclaims on detach");
    assert_eq!(refcount.stats().store_ttl_evictions, 0);

    let mut ttl = JuryService::with_config(ServiceConfig {
        store_ttl: Some(Duration::from_secs(3600)),
        ..Default::default()
    });
    let p = ttl.create_pool(jurors.clone());
    ttl.warm_pool(p).unwrap();
    ttl.update_juror(p, 2, perturbed).unwrap();
    assert_eq!(ttl.artifact_entries(), 1, "the orphaned entry outlives the detach");
    ttl.update_juror(p, 2, jurors[2]).unwrap();
    assert_eq!(ttl.stats().artifact_rejoins, 1, "restored content re-joins the kept orphan");
    assert_eq!(ttl.stats().store_ttl_evictions, 0, "nothing expired under a 1h TTL");
    assert_altr_matches_direct(&mut ttl, p, "re-joined sole holder");
    assert_paym_matches_direct(&mut ttl, p, 0.8, "re-joined sole holder");
}

#[test]
fn ttl_expiry_evicts_and_ticks_the_counter() {
    // A zero TTL expires orphans at the very next sweep: the counter
    // gate for `store_ttl_evictions`, and proof the expired entry is
    // really gone (the restoring mutation cannot re-join it).
    let jurors = build(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4), (0.25, 0.3)]);
    let mut service = JuryService::with_config(ServiceConfig {
        store_ttl: Some(Duration::ZERO),
        ..Default::default()
    });
    let p = service.create_pool(jurors.clone());
    service.warm_pool(p).unwrap();
    assert_eq!(service.artifact_entries(), 1);

    let perturbed = Juror::new(91, ErrorRate::new(0.17).unwrap(), 0.25);
    service.update_juror(p, 1, perturbed).unwrap();
    assert_eq!(service.stats().store_ttl_evictions, 1, "the orphan expires at the next sweep");
    assert_eq!(service.artifact_entries(), 0);
    service.update_juror(p, 1, jurors[1]).unwrap();
    assert_eq!(service.stats().artifact_rejoins, 0, "the expired entry cannot be re-joined");

    // Pool removal stamps and sweeps the same way.
    let a = service.create_pool(jurors.clone());
    let b = service.create_pool(jurors.clone());
    service.warm_pool(a).unwrap();
    service.warm_pool(b).unwrap();
    let evictions = service.stats().store_ttl_evictions;
    service.remove_pool(a).unwrap();
    assert_eq!(service.stats().store_ttl_evictions, evictions, "the sibling still holds it");
    service.remove_pool(b).unwrap();
    assert_eq!(service.stats().store_ttl_evictions, evictions + 1, "the last removal expires it");
    assert_eq!(service.artifact_entries(), 0);

    // The explicit sweep entry point: a no-op with nothing pending, and
    // always a no-op without a TTL configured.
    assert_eq!(service.sweep_artifact_ttl(), 0);
    assert_eq!(JuryService::new().sweep_artifact_ttl(), 0);
}

#[test]
fn sharing_disabled_stays_private() {
    let jurors = build(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4)]);
    let mut service = private_service();
    let a = service.create_pool(jurors.clone());
    let b = service.create_pool(jurors);
    service.warm_pool(a).unwrap();
    service.warm_pool(b).unwrap();
    let stats = service.stats();
    assert_eq!(stats.cache_builds, 2, "each pool builds privately");
    assert_eq!(stats.artifact_share_hits, 0);
    assert_eq!(service.artifact_entries(), 0);
    assert!(!service.shares_artifacts_with(a, b).unwrap());
    assert_eq!(service.fingerprint(a).unwrap(), service.fingerprint(b).unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Satellite contract: permuted-but-equal juror multisets produce
    // equal fingerprints and — when the content is tie-free — shared,
    // pointer-equal artifact sets; every answer stays bit-identical to
    // the permuted pool's own direct solve either way. Tie-violating
    // content (equal ε, different cost) must refuse the permuted share
    // and build privately.
    #[test]
    fn permuted_pools_share_fingerprints_and_artifacts(
        pairs in pools(60),
        seed in 1u64..u64::MAX,
        budget in 0.0..3.0f64,
    ) {
        let jurors = build(&pairs);
        let permuted = shuffled(&jurors, seed);
        let mut service = JuryService::new();
        let a = service.create_pool(jurors.clone());
        let b = service.create_pool(permuted.clone());
        prop_assert_eq!(
            service.fingerprint(a).unwrap(),
            service.fingerprint(b).unwrap(),
            "equal multisets must produce equal fingerprints"
        );
        service.warm_pool(a).unwrap();
        service.warm_pool(b).unwrap();
        let shared = service.shares_artifacts_with(a, b).unwrap();
        if tie_free(&jurors) {
            prop_assert!(shared, "tie-free permuted multisets must share pointer-equal artifacts");
            prop_assert_eq!(service.stats().artifact_share_hits, 1);
            prop_assert_eq!(service.artifact_entries(), 1);
        } else {
            prop_assert!(!shared, "tie-violating content must refuse the permuted share");
        }
        // Shared or not, the permuted pool's answers are its own:
        // bit-identical to the direct solvers on *its* juror order.
        assert_altr_matches_direct(&mut service, a, "founding pool");
        assert_altr_matches_direct(&mut service, b, "permuted pool");
        assert_paym_matches_direct(&mut service, a, budget, "founding pool");
        assert_paym_matches_direct(&mut service, b, budget, "permuted pool");
        // Rank-space artifacts agree bit-for-bit across the permutation.
        let profile_a = service.jer_profile(a).unwrap().to_vec();
        let profile_b = service.jer_profile(b).unwrap().to_vec();
        for ((na, ja), (nb, jb)) in profile_a.iter().zip(&profile_b) {
            prop_assert_eq!(na, nb);
            prop_assert_eq!(ja.to_bits(), jb.to_bits());
        }
    }

    // Any single-juror ε perturbation changes the fingerprint and
    // detaches; restoring the juror re-joins. Adversarial rates are in
    // the pool generator.
    #[test]
    fn single_juror_perturbations_always_detach(
        pairs in pools(40),
        victim in any::<prop::sample::Index>(),
        flip in any::<bool>(),
    ) {
        let jurors = build(&pairs);
        let mut service = JuryService::new();
        let a = service.create_pool(jurors.clone());
        let b = service.create_pool(jurors.clone());
        service.warm_pool(a).unwrap();
        service.warm_pool(b).unwrap();
        prop_assert!(service.shares_artifacts_with(a, b).unwrap());
        let fp = service.fingerprint(a).unwrap();

        let idx = victim.index(jurors.len());
        let old = jurors[idx];
        // One-ulp ε moves in either direction are new content.
        let eps_bits = old.epsilon().to_bits();
        let new_eps = f64::from_bits(if flip { eps_bits + 1 } else { eps_bits - 1 });
        prop_assume!(new_eps > 0.0 && new_eps < 1.0);
        service.update_juror(a, idx, Juror::new(999, ErrorRate::new(new_eps).unwrap(), old.cost))
            .unwrap();
        prop_assert_ne!(service.fingerprint(a).unwrap(), fp, "perturbed content, new key");
        prop_assert!(!service.shares_artifacts_with(a, b).unwrap(), "perturbation must detach");
        assert_altr_matches_direct(&mut service, a, "perturbed pool");

        service.update_juror(a, idx, old).unwrap();
        prop_assert_eq!(service.fingerprint(a).unwrap(), fp, "restored content, restored key");
        prop_assert!(service.shares_artifacts_with(a, b).unwrap(), "restoration re-joins");
        prop_assert!(service.stats().artifact_rejoins >= 1);
        assert_altr_matches_direct(&mut service, a, "re-joined pool");
    }
}
