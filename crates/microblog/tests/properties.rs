//! Property-based tests for the micro-blog substrate.

use jury_microblog::graph_builder::build_retweet_graph;
use jury_microblog::parser::{extract_retweet_chain, is_legal_username, retweet_pairs};
use jury_microblog::synth::{MicroblogDataset, SynthConfig};
use jury_microblog::tweet::Tweet;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy for legal usernames (1–15 word characters).
fn username() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_]{1,15}"
}

/// Strategy for filler text without retweet markers.
fn filler() -> impl Strategy<Value = String> {
    "[a-z ]{0,20}".prop_map(|s| s.replace("RT @", ""))
}

proptest! {
    #[test]
    fn synthesised_chains_round_trip(names in vec(username(), 1..6), tail in filler()) {
        // Build "RT @a: RT @b: … tail" and parse it back.
        let mut content = String::new();
        for name in &names {
            content.push_str("RT @");
            content.push_str(name);
            content.push_str(": ");
        }
        content.push_str(&tail);
        let chain = extract_retweet_chain(&content);
        let expected: Vec<&str> = names.iter().map(String::as_str).collect();
        prop_assert_eq!(chain, expected);
    }

    #[test]
    fn pairs_follow_chain_structure(author in username(), names in vec(username(), 1..6)) {
        let mut content = String::new();
        for name in &names {
            content.push_str("RT @");
            content.push_str(name);
            content.push_str(": ");
        }
        content.push_str("src");
        let pairs = retweet_pairs(&author, &content);
        prop_assert_eq!(pairs.len(), names.len());
        prop_assert_eq!(pairs[0].0, author.as_str());
        for (i, &(from, to)) in pairs.iter().enumerate() {
            if i > 0 {
                prop_assert_eq!(from, names[i - 1].as_str());
            }
            prop_assert_eq!(to, names[i].as_str());
        }
    }

    #[test]
    fn marker_free_text_never_parses(text in filler()) {
        prop_assert!(extract_retweet_chain(&text).is_empty());
    }

    #[test]
    fn extracted_names_are_always_legal(content in ".{0,80}") {
        for name in extract_retweet_chain(&content) {
            prop_assert!(is_legal_username(name), "illegal extract {name:?}");
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(content in ".{0,200}") {
        let _ = extract_retweet_chain(&content);
        let _ = retweet_pairs("someone", &content);
    }

    #[test]
    fn graph_nodes_bound_by_mentions(author in username(), names in vec(username(), 0..5)) {
        let mut content = String::new();
        for name in &names {
            content.push_str("RT @");
            content.push_str(name);
            content.push(' ');
        }
        let tweet = Tweet::new_unchecked(author.clone(), content);
        let rg = build_retweet_graph(std::slice::from_ref(&tweet));
        // Node count is at most author + distinct mentioned names.
        let mut distinct: std::collections::HashSet<&str> =
            names.iter().map(String::as_str).collect();
        distinct.insert(author.as_str());
        prop_assert!(rg.graph.node_count() <= distinct.len());
        // Every edge endpoint resolves back to a username.
        for (u, v) in rg.graph.edges() {
            prop_assert!(rg.users.resolve(u).is_some());
            prop_assert!(rg.users.resolve(v).is_some());
        }
    }

    #[test]
    fn generated_datasets_are_internally_consistent(seed in 0u64..500) {
        let d = MicroblogDataset::generate(&SynthConfig {
            n_users: 30,
            n_tweets: 120,
            seed,
            ..Default::default()
        });
        prop_assert_eq!(d.users.len(), 30);
        prop_assert_eq!(d.tweets.len(), 120);
        for t in &d.tweets {
            prop_assert!(t.content.chars().count() <= 140);
            // Every referenced user exists.
            for name in extract_retweet_chain(&t.content) {
                prop_assert!(d.true_error_rate_of(name).is_some());
            }
        }
        let rg = d.build_graph();
        prop_assert!(rg.graph.node_count() <= d.users.len());
    }
}
