//! Algorithm 5: tweets → directed retweet graph.
//!
//! Walks every tweet record, extracts its retweet chain and adds one edge
//! per retweet-relationship pair, deduplicated ("we link user1 to user2
//! once and only once for each pair"). Self-loops (a user retweeting
//! themselves) are dropped — they carry no authority signal and would bias
//! both HITS and PageRank.

use crate::parser::retweet_pairs;
use crate::tweet::Tweet;
use jury_graph::{DiGraph, DiGraphBuilder, Interner};

/// A retweet graph together with the username ↔ node-id mapping.
#[derive(Debug, Clone)]
pub struct RetweetGraph {
    /// The deduplicated directed graph; edge `u → v` means `u` retweeted
    /// `v` at least once.
    pub graph: DiGraph,
    /// Username interner: node ids index ranking-score vectors.
    pub users: Interner,
}

impl RetweetGraph {
    /// Username of node `id` (panics on out-of-range ids — they cannot be
    /// produced by this builder).
    pub fn username(&self, id: u32) -> &str {
        self.users.resolve(id).expect("node id produced by this graph")
    }
}

/// Builds the retweet graph from tweet records (paper Algorithm 5).
///
/// Every author of a retweet and every user mentioned in an `RT @` chain
/// becomes a node; authors of non-retweet tweets become isolated nodes so
/// that the candidate pool matches the set of active accounts, as in the
/// paper's crawl.
pub fn build_retweet_graph(tweets: &[Tweet]) -> RetweetGraph {
    let mut users = Interner::new();
    let mut builder = DiGraphBuilder::new();
    for tweet in tweets {
        let author_id = users.intern(&tweet.author);
        builder.ensure_node(author_id);
        for (from, to) in retweet_pairs(&tweet.author, &tweet.content) {
            let from_id = users.intern(from);
            let to_id = users.intern(to);
            builder.add_edge(from_id, to_id);
        }
    }
    RetweetGraph { graph: builder.build(), users }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(author: &str, content: &str) -> Tweet {
        Tweet::new(author, content)
    }

    #[test]
    fn empty_input_builds_empty_graph() {
        let rg = build_retweet_graph(&[]);
        assert!(rg.graph.is_empty());
        assert!(rg.users.is_empty());
    }

    #[test]
    fn single_retweet_single_edge() {
        let rg = build_retweet_graph(&[t("alice", "RT @bob: hi")]);
        assert_eq!(rg.graph.node_count(), 2);
        assert_eq!(rg.graph.edge_count(), 1);
        let alice = rg.users.get("alice").unwrap();
        let bob = rg.users.get("bob").unwrap();
        assert_eq!(rg.graph.successors(alice), &[bob]);
        assert_eq!(rg.username(bob), "bob");
    }

    #[test]
    fn chain_produces_path_edges() {
        let rg = build_retweet_graph(&[t("a1", "RT @b2: RT @c3: origin")]);
        let a = rg.users.get("a1").unwrap();
        let b = rg.users.get("b2").unwrap();
        let c = rg.users.get("c3").unwrap();
        assert_eq!(rg.graph.edge_count(), 2);
        assert_eq!(rg.graph.successors(a), &[b]);
        assert_eq!(rg.graph.successors(b), &[c]);
    }

    #[test]
    fn repeated_retweets_collapse_to_one_edge() {
        let tweets = vec![
            t("alice", "RT @bob: one"),
            t("alice", "RT @bob: two"),
            t("alice", "RT @bob: three"),
        ];
        let rg = build_retweet_graph(&tweets);
        assert_eq!(rg.graph.edge_count(), 1);
    }

    #[test]
    fn non_retweet_authors_become_isolated_nodes() {
        let rg = build_retweet_graph(&[t("lurker", "nice weather today")]);
        assert_eq!(rg.graph.node_count(), 1);
        assert_eq!(rg.graph.edge_count(), 0);
        assert!(rg.users.get("lurker").is_some());
    }

    #[test]
    fn self_retweet_is_dropped() {
        let rg = build_retweet_graph(&[t("echo", "RT @echo: me again")]);
        assert_eq!(rg.graph.edge_count(), 0);
        assert_eq!(rg.graph.node_count(), 1);
    }

    #[test]
    fn multiple_tweets_accumulate() {
        let tweets = vec![
            t("a", "RT @b: x"),
            t("c", "RT @b: y"),
            t("b", "RT @d: z"),
            t("a", "plain message"),
        ];
        let rg = build_retweet_graph(&tweets);
        assert_eq!(rg.graph.node_count(), 4);
        assert_eq!(rg.graph.edge_count(), 3);
        let b = rg.users.get("b").unwrap();
        assert_eq!(rg.graph.in_degree(b), 2); // retweeted by a and c
        assert_eq!(rg.graph.out_degree(b), 1); // retweeted d once
    }

    #[test]
    fn chain_interior_users_need_no_own_tweets() {
        // carol never authored a record, but appears mid-chain.
        let rg = build_retweet_graph(&[t("alice", "RT @carol: RT @dave: src")]);
        assert!(rg.users.get("carol").is_some());
        assert!(rg.users.get("dave").is_some());
        assert_eq!(rg.graph.edge_count(), 2);
    }
}
