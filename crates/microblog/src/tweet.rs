//! Tweet records — the input of the paper's Algorithm 5.
//!
//! Each record `r(t, author)` pairs a raw text content with its author's
//! username. Content length follows the micro-blog convention of at most
//! 140 characters, which the constructor enforces (the synthetic generator
//! never exceeds it, and real crawls satisfy it by definition).

/// Maximum tweet length in characters (the Twitter-classic limit the
/// paper cites for micro-blog brevity).
pub const MAX_TWEET_CHARS: usize = 140;

/// A single micro-blog message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tweet {
    /// Username of the account that published this message.
    pub author: String,
    /// Raw message text, possibly containing `RT @user` markup.
    pub content: String,
}

impl Tweet {
    /// Creates a tweet, validating the author name and length limit.
    ///
    /// # Panics
    /// Panics if `author` is not a legal username (see
    /// [`crate::parser::is_legal_username`]) or `content` exceeds
    /// [`MAX_TWEET_CHARS`] characters.
    pub fn new(author: impl Into<String>, content: impl Into<String>) -> Self {
        let author = author.into();
        let content = content.into();
        assert!(crate::parser::is_legal_username(&author), "illegal author username: {author:?}");
        assert!(
            content.chars().count() <= MAX_TWEET_CHARS,
            "tweet exceeds {MAX_TWEET_CHARS} characters"
        );
        Self { author, content }
    }

    /// Creates a tweet without validation — for parser tests that need
    /// malformed content.
    pub fn new_unchecked(author: impl Into<String>, content: impl Into<String>) -> Self {
        Self { author: author.into(), content: content.into() }
    }

    /// `true` if the content contains at least one `RT @` marker.
    pub fn is_retweet(&self) -> bool {
        self.content.contains("RT @")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_valid_tweet() {
        let t = Tweet::new("alice", "hello world");
        assert_eq!(t.author, "alice");
        assert!(!t.is_retweet());
    }

    #[test]
    fn detects_retweet_marker() {
        let t = Tweet::new("bob", "RT @alice: hello");
        assert!(t.is_retweet());
    }

    #[test]
    #[should_panic(expected = "illegal author")]
    fn rejects_bad_author() {
        let _ = Tweet::new("bad name!", "x");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_overlong_content() {
        let long = "x".repeat(MAX_TWEET_CHARS + 1);
        let _ = Tweet::new("alice", long);
    }

    #[test]
    fn limit_is_in_characters_not_bytes() {
        // 140 multi-byte characters are fine even though > 140 bytes.
        let content = "é".repeat(MAX_TWEET_CHARS);
        let t = Tweet::new("alice", content);
        assert_eq!(t.content.chars().count(), MAX_TWEET_CHARS);
    }

    #[test]
    fn unchecked_allows_anything() {
        let t = Tweet::new_unchecked("x y", "z".repeat(500));
        assert_eq!(t.author, "x y");
    }
}
