//! Retweet-chain extraction from raw tweet text.
//!
//! The paper (§4.1.1) recognises retweets by the substring pattern
//! `RT @username` (their Algorithm 5 uses the regex `RT @[\w]+[\W]+`) and
//! distinguishes two cases:
//!
//! 1. exactly one `RT @username` — a single retweet-relationship pair
//!    `(author, username)`;
//! 2. several `RT @username` markers — a *retweet chain*: for markers
//!    `u2, u3, …, uN` in order of appearance in the text, the pairs are
//!    `(author,u2), (u2,u3), …, (u_{N-1}, u_N)` — `u_N` wrote the original
//!    and each previous user rebroadcast the next one's message.
//!
//! Usernames follow the `\w` character class: ASCII letters, digits and
//! underscore. No external regex dependency is needed — the pattern is
//! fixed, so a hand-rolled scanner is both faster and dependency-free.

/// `true` for characters inside the `\w` class used by the paper's regex.
#[inline]
fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// `true` if `name` is a legal micro-blog username: non-empty, at most 15
/// characters (Twitter's limit), all from `[A-Za-z0-9_]`.
pub fn is_legal_username(name: &str) -> bool {
    !name.is_empty() && name.len() <= 15 && name.chars().all(is_word_char)
}

/// Extracts the retweeted usernames from tweet content, in order of
/// appearance. Returns an empty vector for non-retweets.
///
/// Matches the literal marker `RT @` followed by a maximal run of word
/// characters. A marker with no username characters after `@` is ignored,
/// as is anything the 15-character username limit rejects (overlong runs
/// are skipped entirely rather than truncated, since a truncated name
/// would reference the wrong account).
pub fn extract_retweet_chain(content: &str) -> Vec<&str> {
    const MARKER: &str = "RT @";
    let mut chain = Vec::new();
    let mut rest = content;
    let mut base = 0usize;
    while let Some(pos) = rest.find(MARKER) {
        let name_start = base + pos + MARKER.len();
        let tail = &content[name_start..];
        let name_len =
            tail.char_indices().find(|&(_, c)| !is_word_char(c)).map_or(tail.len(), |(i, _)| i);
        if name_len > 0 {
            let name = &content[name_start..name_start + name_len];
            if is_legal_username(name) {
                chain.push(name);
            }
        }
        base = name_start + name_len;
        rest = &content[base..];
    }
    chain
}

/// Decomposes one tweet into retweet-relationship pairs per §4.1.1:
/// `(author,u2), (u2,u3), …` for the chain `u2 … uN` found in `content`.
///
/// The author is *not* validated here — malformed author records simply
/// yield pairs with the malformed name, mirroring how a crawl pipeline
/// would behave; graph construction interns whatever it is given.
pub fn retweet_pairs<'a>(author: &'a str, content: &'a str) -> Vec<(&'a str, &'a str)> {
    let chain = extract_retweet_chain(content);
    if chain.is_empty() {
        return Vec::new();
    }
    let mut pairs = Vec::with_capacity(chain.len());
    let mut prev = author;
    for name in chain {
        pairs.push((prev, name));
        prev = name;
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_tweet_has_no_chain() {
        assert!(extract_retweet_chain("just my opinion").is_empty());
        assert!(retweet_pairs("alice", "hello").is_empty());
    }

    #[test]
    fn single_retweet() {
        let chain = extract_retweet_chain("RT @bob: totally agree");
        assert_eq!(chain, vec!["bob"]);
        let pairs = retweet_pairs("alice", "RT @bob: totally agree");
        assert_eq!(pairs, vec![("alice", "bob")]);
    }

    #[test]
    fn chain_of_three_produces_two_pairs_plus_author() {
        // alice posts: RT @bob: RT @carol: original
        // => (alice,bob), (bob,carol)
        let pairs = retweet_pairs("alice", "RT @bob: RT @carol: original text");
        assert_eq!(pairs, vec![("alice", "bob"), ("bob", "carol")]);
    }

    #[test]
    fn long_chain_order_follows_appearance() {
        let content = "RT @u2: RT @u3: RT @u4: RT @u5: src";
        let chain = extract_retweet_chain(content);
        assert_eq!(chain, vec!["u2", "u3", "u4", "u5"]);
        let pairs = retweet_pairs("u1", content);
        assert_eq!(pairs, vec![("u1", "u2"), ("u2", "u3"), ("u3", "u4"), ("u4", "u5")]);
    }

    #[test]
    fn marker_mid_text() {
        let chain = extract_retweet_chain("so true! RT @sage wisdom here");
        assert_eq!(chain, vec!["sage"]);
    }

    #[test]
    fn username_stops_at_non_word_char() {
        assert_eq!(extract_retweet_chain("RT @a_b9: x"), vec!["a_b9"]);
        assert_eq!(extract_retweet_chain("RT @name's tweet"), vec!["name"]);
        assert_eq!(extract_retweet_chain("RT @über"), Vec::<&str>::new()); // non-ASCII first char
    }

    #[test]
    fn empty_username_is_ignored() {
        assert!(extract_retweet_chain("RT @ : nothing").is_empty());
        assert!(extract_retweet_chain("RT @").is_empty());
    }

    #[test]
    fn overlong_username_is_skipped_not_truncated() {
        let content = "RT @abcdefghijklmnop: too long"; // 16 chars
        assert!(extract_retweet_chain(content).is_empty());
    }

    #[test]
    fn case_sensitive_marker() {
        // Lowercase "rt @" is not the markup the paper matches.
        assert!(extract_retweet_chain("rt @bob nope").is_empty());
    }

    #[test]
    fn adjacent_markers() {
        assert_eq!(extract_retweet_chain("RT @aRT @b"), vec!["aRT"]);
        assert_eq!(extract_retweet_chain("RT @a RT @b"), vec!["a", "b"]);
    }

    #[test]
    fn at_without_rt_is_a_mention_not_a_retweet() {
        assert!(extract_retweet_chain("thanks @bob!").is_empty());
    }

    #[test]
    fn marker_at_end_of_content() {
        assert_eq!(extract_retweet_chain("check this RT @last"), vec!["last"]);
    }

    #[test]
    fn legal_username_predicate() {
        assert!(is_legal_username("a"));
        assert!(is_legal_username("user_42"));
        assert!(is_legal_username("ABCDEFGHIJKLMNO")); // 15 chars
        assert!(!is_legal_username(""));
        assert!(!is_legal_username("ABCDEFGHIJKLMNOP")); // 16 chars
        assert!(!is_legal_username("has space"));
        assert!(!is_legal_username("émile"));
    }

    #[test]
    fn unicode_content_does_not_break_scanning() {
        let chain = extract_retweet_chain("日本語 RT @quake_bot: 地震情報 RT @src: 詳細");
        assert_eq!(chain, vec!["quake_bot", "src"]);
    }

    #[test]
    fn self_retweet_pairs_are_produced() {
        // Dedup/self-loop policy belongs to the graph builder, not parsing.
        let pairs = retweet_pairs("alice", "RT @alice: echo");
        assert_eq!(pairs, vec![("alice", "alice")]);
    }
}
