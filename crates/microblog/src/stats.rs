//! Degree-distribution diagnostics for retweet graphs.
//!
//! The paper's error-rate normalisation (§4.1.3) is motivated by "the
//! Power law distribution characteristics of social network users". Our
//! synthetic corpus substitutes for the 2012 crawl, so this module
//! provides the tools to *verify* the substitution quantitatively:
//! degree histograms, the complementary CDF, and the Hill estimator of
//! the power-law tail exponent. Real social retweet graphs exhibit tail
//! exponents α ≈ 2–3; the generator's tests pin its output to that
//! range.

use jury_graph::DiGraph;

/// In-degree of every node (how often each user was retweeted by
/// distinct users).
pub fn in_degrees(graph: &DiGraph) -> Vec<usize> {
    (0..graph.node_count() as u32).map(|u| graph.in_degree(u)).collect()
}

/// Histogram of a degree sequence: `(degree, node count)` sorted by
/// degree ascending, zero-count degrees omitted.
pub fn degree_histogram(degrees: &[usize]) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for &d in degrees {
        *counts.entry(d).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// Complementary CDF of a degree sequence: for each distinct degree `d`,
/// the fraction of nodes with degree ≥ `d`. Sorted by degree ascending.
pub fn degree_ccdf(degrees: &[usize]) -> Vec<(usize, f64)> {
    if degrees.is_empty() {
        return Vec::new();
    }
    let n = degrees.len() as f64;
    let hist = degree_histogram(degrees);
    let mut remaining = degrees.len();
    let mut out = Vec::with_capacity(hist.len());
    for (degree, count) in hist {
        out.push((degree, remaining as f64 / n));
        remaining -= count;
    }
    out
}

/// Hill estimator of the power-law tail exponent α from the `k` largest
/// observations: `α = 1 + k / Σ ln(x_(i)/x_(k))`.
///
/// Returns `None` when fewer than 2 positive observations are available
/// or `k < 2`. Degrees of zero are ignored (the tail estimator only sees
/// positive values).
pub fn hill_tail_exponent(degrees: &[usize], k: usize) -> Option<f64> {
    let mut positive: Vec<f64> = degrees.iter().filter(|&&d| d > 0).map(|&d| d as f64).collect();
    if positive.len() < 2 || k < 2 {
        return None;
    }
    positive.sort_by(|a, b| b.total_cmp(a)); // descending
    let k = k.min(positive.len());
    let x_k = positive[k - 1];
    if x_k <= 0.0 {
        return None;
    }
    let sum_log: f64 = positive[..k].iter().map(|x| (x / x_k).ln()).sum();
    if sum_log <= 0.0 {
        // All top-k degrees equal: no measurable tail decay.
        return None;
    }
    Some(1.0 + (k as f64 - 1.0) / sum_log)
}

/// Share of all in-edges held by the top `fraction` of nodes — the
/// concentration statistic ("the top 10% hold X% of the retweets").
///
/// # Panics
/// Panics unless `0 < fraction <= 1`.
pub fn top_share(degrees: &[usize], fraction: f64) -> f64 {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
    if degrees.is_empty() {
        return 0.0;
    }
    let total: usize = degrees.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted = degrees.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let take = ((degrees.len() as f64 * fraction).ceil() as usize).max(1);
    let top: usize = sorted[..take.min(sorted.len())].iter().sum();
    top as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{MicroblogDataset, SynthConfig};

    #[test]
    fn histogram_counts_nodes() {
        let degrees = [0, 1, 1, 3, 3, 3];
        assert_eq!(degree_histogram(&degrees), vec![(0, 1), (1, 2), (3, 3)]);
    }

    #[test]
    fn ccdf_starts_at_one_and_decreases() {
        let degrees = [1, 2, 2, 5, 9];
        let ccdf = degree_ccdf(&degrees);
        assert_eq!(ccdf[0], (1, 1.0));
        for w in ccdf.windows(2) {
            assert!(w[1].1 < w[0].1);
        }
        let last = ccdf.last().unwrap();
        assert_eq!(last.0, 9);
        assert!((last.1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ccdf_empty() {
        assert!(degree_ccdf(&[]).is_empty());
    }

    #[test]
    fn hill_recovers_planted_exponent() {
        // Sample a discrete Pareto with α = 2.5 via inverse transform on
        // a deterministic low-discrepancy sequence.
        let alpha = 2.5f64;
        let degrees: Vec<usize> = (1..4000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 4000.0;
                ((1.0 - u).powf(-1.0 / (alpha - 1.0))).round() as usize
            })
            .collect();
        let est = hill_tail_exponent(&degrees, 400).expect("estimable");
        assert!((est - alpha).abs() < 0.35, "estimated {est}, wanted ~{alpha}");
    }

    #[test]
    fn hill_degenerate_inputs() {
        assert!(hill_tail_exponent(&[], 10).is_none());
        assert!(hill_tail_exponent(&[5], 10).is_none());
        assert!(hill_tail_exponent(&[3, 3, 3, 3], 4).is_none()); // no decay
        assert!(hill_tail_exponent(&[0, 0, 0], 2).is_none()); // no positive mass
        assert!(hill_tail_exponent(&[1, 2, 3], 1).is_none()); // k too small
    }

    #[test]
    fn top_share_concentration() {
        // One hub with 90 edges, nine leaves with 1 edge + non-cited rest.
        let mut degrees = vec![90usize];
        degrees.extend(std::iter::repeat_n(1usize, 9));
        degrees.extend(std::iter::repeat_n(0usize, 90));
        let share = top_share(&degrees, 0.01); // top 1% = 1 node
        assert!((share - 90.0 / 99.0).abs() < 1e-12);
        assert_eq!(top_share(&degrees, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn top_share_checks_fraction() {
        let _ = top_share(&[1, 2], 0.0);
    }

    #[test]
    fn synthetic_corpus_has_social_network_tail() {
        // The headline validation: the generator's retweet graph shows a
        // power-law-like tail with exponent in the range reported for
        // real social networks (≈ 1.5–3.5).
        let dataset = MicroblogDataset::generate(&SynthConfig {
            n_users: 1500,
            n_tweets: 25_000,
            seed: 99,
            ..Default::default()
        });
        let rg = dataset.build_graph();
        let degrees = in_degrees(&rg.graph);
        let k = degrees.iter().filter(|&&d| d > 0).count() / 10;
        let alpha = hill_tail_exponent(&degrees, k.max(10)).expect("tail measurable");
        assert!(
            (1.3..=3.8).contains(&alpha),
            "tail exponent {alpha} outside the social-network range"
        );
        // And the 80/20-style concentration the paper leans on.
        assert!(top_share(&degrees, 0.1) > 0.4);
    }
}
