//! Micro-blog service substrate.
//!
//! The paper estimates juror parameters from a crawl of the public Twitter
//! timeline. That dataset is not available, so this crate provides the
//! closest synthetic equivalent that exercises the *same code paths*:
//!
//! * [`tweet`] — the tweet/user records of the paper's Algorithm 5 input
//!   (each record is an author plus raw text content);
//! * [`parser`] — extraction of `RT @username` retweet chains from raw
//!   tweet text, following the paper's two cases (single retweet and
//!   retweet chains) including the chain-pair decomposition
//!   `(user1,user2), (user2,user3), …`;
//! * [`graph_builder`] — Algorithm 5: tweets → deduplicated directed
//!   retweet graph;
//! * [`synth`] — a preferential-attachment micro-blog generator whose
//!   retweet popularity follows the power law the paper observes on real
//!   Twitter data, with per-user latent reliability and account ages;
//! * [`account`] — account-age bookkeeping used by the PayM requirement
//!   estimator;
//! * [`stats`] — degree-distribution diagnostics (histogram, CCDF, Hill
//!   tail-exponent estimator) verifying that generated corpora show the
//!   power-law concentration the paper's normalisation assumes.
//!
//! The generator writes *textual* tweets with real `RT @user` markup; the
//! downstream pipeline parses that text exactly as it would parse the real
//! crawl, so the substitution only changes where the bytes come from.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod account;
pub mod graph_builder;
pub mod parser;
pub mod stats;
pub mod synth;
pub mod tweet;

pub use graph_builder::{build_retweet_graph, RetweetGraph};
pub use parser::{extract_retweet_chain, retweet_pairs};
pub use synth::{MicroblogDataset, SynthConfig, SynthUser};
pub use tweet::Tweet;
