//! Synthetic micro-blog generator.
//!
//! Substitute for the paper's two-day public-timeline Twitter crawl
//! (§5.2). The generator emits *raw textual tweets* with genuine
//! `RT @user` markup so the downstream pipeline (parser → Algorithm 5 →
//! HITS/PageRank → error-rate normalisation) runs exactly the code it
//! would run on a real crawl.
//!
//! Two properties of the real data matter for the experiments and are
//! reproduced here:
//!
//! 1. **Power-law retweet popularity** — the paper's §4.1.3 normalisation
//!    explicitly leans on "the Power law distribution characteristics of
//!    social network users". We use preferential attachment (each retweet
//!    targets users proportionally to current in-degree, mixed with a
//!    Pareto-distributed latent quality that seeds the process), which
//!    yields the heavy-tailed in-degree distribution of real Twitter.
//! 2. **Retweet chains** — tweets of the form `RT @a: RT @b: …` appear
//!    with configurable probability, exercising the chain-pair extraction
//!    of Algorithm 5 case 2.
//!
//! Each user also carries a **latent reliability** (their true individual
//! error rate, decreasing in quality) used by simulation examples to
//! generate votes, and an **account age** used by the PayM requirement
//! estimator (§4.2).

use crate::tweet::{Tweet, MAX_TWEET_CHARS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`MicroblogDataset::generate`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of user accounts.
    pub n_users: usize,
    /// Number of tweet records to emit.
    pub n_tweets: usize,
    /// Probability that a tweet is a retweet rather than original content.
    pub retweet_fraction: f64,
    /// Probability that a retweet chain extends one link further
    /// (geometric chain length; chains are also capped by the
    /// 140-character limit).
    pub chain_continue_prob: f64,
    /// Mixing weight for preferential attachment: with this probability a
    /// retweet target is drawn proportionally to current in-degree
    /// ("rich get richer"), otherwise proportionally to latent quality.
    pub preferential_bias: f64,
    /// Pareto shape of the latent quality distribution; smaller = heavier
    /// tail. 1.16 reproduces the classic 80/20 concentration.
    pub quality_shape: f64,
    /// Maximum account age in days (ages are uniform on `[1, max]`).
    pub max_account_age_days: u32,
    /// RNG seed — identical seeds give byte-identical datasets.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            n_users: 1000,
            n_tweets: 20_000,
            retweet_fraction: 0.6,
            chain_continue_prob: 0.25,
            preferential_bias: 0.7,
            quality_shape: 1.16,
            max_account_age_days: 3650,
            seed: 42,
        }
    }
}

/// A synthetic user account.
#[derive(Debug, Clone)]
pub struct SynthUser {
    /// Legal micro-blog username (`u0`, `u1`, …).
    pub name: String,
    /// Days since registration; input to the requirement estimator.
    pub account_age_days: u32,
    /// Latent *true* individual error rate in `(0, 1)`, decreasing in the
    /// user's quality. Simulations use it to generate votes; estimators
    /// never see it.
    pub true_error_rate: f64,
    /// The raw Pareto quality that seeded attachment (exposed for tests
    /// and diagnostics).
    pub quality: f64,
}

/// A generated dataset: users plus raw tweet records.
#[derive(Debug, Clone)]
pub struct MicroblogDataset {
    /// All user accounts, indexed by user id (name `u{id}`).
    pub users: Vec<SynthUser>,
    /// Tweet records in publication order.
    pub tweets: Vec<Tweet>,
}

impl MicroblogDataset {
    /// Generates a dataset according to `config`.
    ///
    /// # Panics
    /// Panics if `n_users == 0`, or any probability parameter is outside
    /// `[0, 1]`, or `quality_shape <= 0`.
    pub fn generate(config: &SynthConfig) -> Self {
        assert!(config.n_users > 0, "need at least one user");
        for (name, p) in [
            ("retweet_fraction", config.retweet_fraction),
            ("chain_continue_prob", config.chain_continue_prob),
            ("preferential_bias", config.preferential_bias),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1], got {p}");
        }
        assert!(config.quality_shape > 0.0, "quality_shape must be positive");

        let mut rng = StdRng::seed_from_u64(config.seed);
        let users = generate_users(config, &mut rng);

        // Cumulative quality weights for O(log n) weighted sampling.
        let mut cum_quality = Vec::with_capacity(users.len());
        let mut acc = 0.0;
        for u in &users {
            acc += u.quality;
            cum_quality.push(acc);
        }

        // Preferential-attachment urn: one entry per received retweet.
        let mut urn: Vec<u32> = Vec::with_capacity(config.n_tweets * 2);
        let mut tweets = Vec::with_capacity(config.n_tweets);

        for tweet_idx in 0..config.n_tweets {
            let author = rng.gen_range(0..users.len()) as u32;
            let is_retweet =
                !users.is_empty() && rng.gen_bool(config.retweet_fraction) && users.len() > 1;
            if !is_retweet {
                tweets.push(Tweet::new(
                    users[author as usize].name.clone(),
                    format!("status update number {tweet_idx}"),
                ));
                continue;
            }

            // Build the chain head-first: author retweets t1, who had
            // retweeted t2, ... Every link targets a distinct next user.
            let mut chain: Vec<u32> = Vec::new();
            let mut prev = author;
            loop {
                let target = pick_target(&users, &cum_quality, &urn, prev, config, &mut rng);
                chain.push(target);
                prev = target;
                // +6 ≈ "RT @" + separator; stop before breaching 140 chars.
                let chain_chars: usize =
                    chain.iter().map(|&u| users[u as usize].name.len() + 6).sum();
                if chain_chars + 20 > MAX_TWEET_CHARS || !rng.gen_bool(config.chain_continue_prob) {
                    break;
                }
            }

            let mut content = String::new();
            for &uid in &chain {
                content.push_str("RT @");
                content.push_str(&users[uid as usize].name);
                content.push_str(": ");
            }
            content.push_str(&format!("msg {tweet_idx}"));
            debug_assert!(content.chars().count() <= MAX_TWEET_CHARS);

            // Update the urn with every link of the chain so popularity
            // compounds exactly as the parsed graph will see it.
            for &uid in &chain {
                urn.push(uid);
            }
            tweets.push(Tweet::new(users[author as usize].name.clone(), content));
        }

        Self { users, tweets }
    }

    /// Convenience: parse the generated tweets into a retweet graph
    /// (paper Algorithm 5).
    pub fn build_graph(&self) -> crate::graph_builder::RetweetGraph {
        crate::graph_builder::build_retweet_graph(&self.tweets)
    }

    /// The true error rate of the user with a given name, if present.
    pub fn true_error_rate_of(&self, name: &str) -> Option<f64> {
        let id: usize = name.strip_prefix('u')?.parse().ok()?;
        self.users.get(id).map(|u| u.true_error_rate)
    }
}

fn generate_users(config: &SynthConfig, rng: &mut StdRng) -> Vec<SynthUser> {
    let mut users = Vec::with_capacity(config.n_users);
    // Pareto quality: w = (1-U)^(-1/shape), support [1, ∞).
    let qualities: Vec<f64> = (0..config.n_users)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            (1.0 - u).powf(-1.0 / config.quality_shape)
        })
        .collect();
    let mean_q = qualities.iter().sum::<f64>() / qualities.len() as f64;
    for (i, &q) in qualities.iter().enumerate() {
        // Reliability rises with quality: error rate decays from ~0.5
        // (anonymous newcomer) towards 0.02 (top authority).
        let true_error_rate = 0.02 + 0.48 * (-q / mean_q).exp();
        users.push(SynthUser {
            name: format!("u{i}"),
            account_age_days: rng.gen_range(1..=config.max_account_age_days.max(1)),
            true_error_rate,
            quality: q,
        });
    }
    users
}

/// Draws a retweet target ≠ `exclude` mixing preferential attachment with
/// quality-weighted choice.
fn pick_target(
    users: &[SynthUser],
    cum_quality: &[f64],
    urn: &[u32],
    exclude: u32,
    config: &SynthConfig,
    rng: &mut StdRng,
) -> u32 {
    debug_assert!(users.len() > 1);
    loop {
        let candidate = if !urn.is_empty() && rng.gen_bool(config.preferential_bias) {
            urn[rng.gen_range(0..urn.len())]
        } else {
            let total = *cum_quality.last().expect("non-empty users");
            let x = rng.gen_range(0.0..total);
            cum_quality.partition_point(|&c| c <= x) as u32
        };
        if candidate != exclude {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::extract_retweet_chain;

    fn small_config() -> SynthConfig {
        SynthConfig { n_users: 50, n_tweets: 500, seed: 7, ..Default::default() }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MicroblogDataset::generate(&small_config());
        let b = MicroblogDataset::generate(&small_config());
        assert_eq!(a.tweets.len(), b.tweets.len());
        for (x, y) in a.tweets.iter().zip(&b.tweets) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = MicroblogDataset::generate(&small_config());
        let b = MicroblogDataset::generate(&SynthConfig { seed: 8, ..small_config() });
        assert!(a.tweets.iter().zip(&b.tweets).any(|(x, y)| x != y));
    }

    #[test]
    fn tweets_respect_length_limit() {
        let d = MicroblogDataset::generate(&SynthConfig {
            chain_continue_prob: 0.9, // stress chains
            ..small_config()
        });
        for t in &d.tweets {
            assert!(t.content.chars().count() <= MAX_TWEET_CHARS);
        }
    }

    #[test]
    fn retweets_parse_back_into_chains() {
        let d = MicroblogDataset::generate(&small_config());
        let mut retweets = 0;
        for t in &d.tweets {
            if t.is_retweet() {
                retweets += 1;
                let chain = extract_retweet_chain(&t.content);
                assert!(!chain.is_empty(), "unparseable retweet: {:?}", t.content);
                for name in chain {
                    assert!(d.true_error_rate_of(name).is_some(), "unknown user {name}");
                }
            }
        }
        // ~60% of 500 should be retweets.
        assert!(retweets > 200, "only {retweets} retweets");
    }

    #[test]
    fn no_self_retweet_links() {
        let d = MicroblogDataset::generate(&small_config());
        for t in &d.tweets {
            let chain = extract_retweet_chain(&t.content);
            let mut prev = t.author.as_str();
            for name in chain {
                assert_ne!(prev, name, "self-link in {:?}", t.content);
                prev = name;
            }
        }
    }

    #[test]
    fn error_rates_are_valid_and_quality_monotone() {
        let d = MicroblogDataset::generate(&small_config());
        for u in &d.users {
            assert!(u.true_error_rate > 0.0 && u.true_error_rate < 1.0);
            assert!(u.quality >= 1.0);
        }
        // Higher quality ⇒ strictly lower error rate (same decay curve).
        let mut by_quality: Vec<&SynthUser> = d.users.iter().collect();
        by_quality.sort_by(|a, b| a.quality.total_cmp(&b.quality));
        for w in by_quality.windows(2) {
            assert!(w[0].true_error_rate >= w[1].true_error_rate);
        }
    }

    #[test]
    fn account_ages_in_range() {
        let cfg = small_config();
        let d = MicroblogDataset::generate(&cfg);
        for u in &d.users {
            assert!(u.account_age_days >= 1 && u.account_age_days <= cfg.max_account_age_days);
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        // Top 10% of users by in-degree should hold a majority of edges —
        // the power-law concentration the paper relies on.
        let d = MicroblogDataset::generate(&SynthConfig {
            n_users: 200,
            n_tweets: 5000,
            seed: 3,
            ..Default::default()
        });
        let rg = d.build_graph();
        let mut in_degrees: Vec<usize> =
            (0..rg.graph.node_count() as u32).map(|u| rg.graph.in_degree(u)).collect();
        in_degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = in_degrees.iter().sum();
        let top_decile: usize = in_degrees[..in_degrees.len() / 10].iter().sum();
        assert!(
            top_decile as f64 > 0.4 * total as f64,
            "top decile holds only {top_decile}/{total} edges"
        );
    }

    #[test]
    fn graph_nodes_cover_active_users() {
        let d = MicroblogDataset::generate(&small_config());
        let rg = d.build_graph();
        assert!(rg.graph.node_count() <= d.users.len());
        assert!(rg.graph.node_count() > 0);
        assert!(rg.graph.edge_count() > 0);
    }

    #[test]
    fn zero_retweet_fraction_yields_no_edges() {
        let d =
            MicroblogDataset::generate(&SynthConfig { retweet_fraction: 0.0, ..small_config() });
        let rg = d.build_graph();
        assert_eq!(rg.graph.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn rejects_zero_users() {
        let _ = MicroblogDataset::generate(&SynthConfig { n_users: 0, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "retweet_fraction")]
    fn rejects_bad_probability() {
        let _ = MicroblogDataset::generate(&SynthConfig {
            retweet_fraction: 1.5,
            ..Default::default()
        });
    }

    #[test]
    fn true_error_rate_lookup() {
        let d = MicroblogDataset::generate(&small_config());
        assert!(d.true_error_rate_of("u0").is_some());
        assert!(d.true_error_rate_of("u49").is_some());
        assert!(d.true_error_rate_of("u50").is_none());
        assert!(d.true_error_rate_of("nobody").is_none());
    }
}
