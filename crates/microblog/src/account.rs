//! Account-age bookkeeping.
//!
//! Section 4.2 of the paper estimates a juror's payment requirement from
//! the *age of the account since registration*, min–max normalised over
//! the candidate pool. This module provides the age record and the
//! normalisation helper the estimator crate builds on.

/// Age of one account, in days since registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccountAge(pub u32);

impl AccountAge {
    /// The raw day count.
    #[inline]
    pub fn days(self) -> u32 {
        self.0
    }
}

/// Min–max normalises ages to `[0, 1]`: `r_i = (t_i - min)/(max - min)`
/// (paper §4.2). All-equal ages normalise to 0 (no user is *relatively*
/// more experienced, so no one commands a premium).
///
/// Returns an empty vector for empty input.
pub fn normalize_ages(ages: &[AccountAge]) -> Vec<f64> {
    if ages.is_empty() {
        return Vec::new();
    }
    let min = ages.iter().min().expect("non-empty").days() as f64;
    let max = ages.iter().max().expect("non-empty").days() as f64;
    if (max - min).abs() < f64::EPSILON {
        return vec![0.0; ages.len()];
    }
    ages.iter().map(|a| (a.days() as f64 - min) / (max - min)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_to_unit_interval() {
        let ages = [AccountAge(100), AccountAge(600), AccountAge(1100)];
        let r = normalize_ages(&ages);
        assert_eq!(r, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn all_equal_ages_normalise_to_zero() {
        let ages = [AccountAge(30); 4];
        assert_eq!(normalize_ages(&ages), vec![0.0; 4]);
    }

    #[test]
    fn empty_input() {
        assert!(normalize_ages(&[]).is_empty());
    }

    #[test]
    fn single_account() {
        assert_eq!(normalize_ages(&[AccountAge(500)]), vec![0.0]);
    }

    #[test]
    fn extremes_map_to_zero_and_one() {
        let ages = [AccountAge(1), AccountAge(3650)];
        let r = normalize_ages(&ages);
        assert_eq!(r[0], 0.0);
        assert_eq!(r[1], 1.0);
    }

    #[test]
    fn ordering_is_preserved() {
        let ages = [AccountAge(10), AccountAge(700), AccountAge(300), AccountAge(50)];
        let r = normalize_ages(&ages);
        assert!(r[0] < r[3] && r[3] < r[2] && r[2] < r[1]);
    }
}
