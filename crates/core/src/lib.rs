//! The Jury Selection Problem (JSP) — core library.
//!
//! This crate implements the primary contribution of *"Whom to Ask? Jury
//! Selection for Decision Making Tasks on Micro-blog Services"* (Cao, She,
//! Tong, Chen — PVLDB 5(11), 2012): selecting, from a pool of candidate
//! jurors with heterogeneous individual error rates (and, under the paid
//! model, payment requirements), the odd-sized jury whose **Jury Error
//! Rate** — the probability that a majority votes incorrectly — is
//! minimal.
//!
//! # Modules
//!
//! * [`juror`] — validated domain types: [`ErrorRate`] in the open unit
//!   interval, [`Juror`] with id/error-rate/cost.
//! * [`jury`] — the odd-sized [`Jury`] and its majority threshold.
//! * [`voting`] — votes, majority voting (Definition 3) and the weighted
//!   log-odds extension.
//! * [`jer`] — JER computation engines: naive enumeration, `O(n²)` dynamic
//!   programming, `O(n)`-space tail DP and the FFT-backed
//!   convolution-based algorithm (CBA), plus the Lemma-2 lower bound.
//! * [`altr`] — `AltrALG` (Algorithm 3) for the altruism model, with the
//!   paper's lower-bound pruning and a faster incremental variant.
//! * [`paym`] — `PayALG` (Algorithm 4), the greedy heuristic for the
//!   NP-hard budgeted model.
//! * [`exact`] — exact PayM solvers (DFS enumeration with budget
//!   pruning, and a thread-parallel version) used as ground truth.
//! * [`merge`] — K-way merging of per-shard sorted orders; the
//!   bit-identity argument behind the serving layer's pool sharding.
//! * [`solver`] — the [`Solver`] trait + [`SolverScratch`] workspace:
//!   every algorithm behind one interface, with caller-owned buffers so
//!   repeated solves (the `jury-service` serving layer) allocate nothing
//!   warm beyond the returned [`Selection`].
//! * [`model`] / [`problem`] — the AltrM/PayM crowdsourcing models and the
//!   [`JurySelectionProblem`] facade tying pool + model + solver together.
//! * [`metrics`] — precision/recall of a selection against ground truth.
//! * [`wire`] — `serde` implementations for the types crossing the
//!   service/API boundary (selections, stats, configs, crowd models).
//!
//! # Quick example
//!
//! ```
//! use jury_core::prelude::*;
//!
//! // The paper's motivating example: jurors A..G.
//! let pool: Vec<Juror> = [0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &e)| Juror::new(i as u32, ErrorRate::new(e).unwrap(), 0.0))
//!     .collect();
//!
//! let problem = JurySelectionProblem::altruism(pool);
//! let sel = problem.solve().unwrap();
//! assert_eq!(sel.members.len(), 5); // A,B,C,D,E is optimal
//! assert!((sel.jer - 0.07036).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod altr;
pub mod error;
pub mod exact;
pub mod fingerprint;
pub mod jer;
pub mod juror;
pub mod jury;
pub mod merge;
pub mod metrics;
pub mod model;
pub mod paym;
pub mod problem;
pub mod solver;
pub mod voting;
pub mod wire;

pub use altr::{AltrAlg, AltrConfig, AltrStrategy};
pub use error::JuryError;
pub use exact::{exact_paym, exact_paym_parallel, ExactConfig, ExactPaym};
pub use fingerprint::{FingerprintKey, PoolFingerprint};
pub use jer::{jer_lower_bound, JerEngine, JerScratch};
pub use juror::{ErrorRate, Juror};
pub use jury::Jury;
pub use metrics::{precision_recall, PrecisionRecall};
pub use model::CrowdModel;
pub use paym::{PayAlg, PayConfig, Staircase};
pub use problem::{JurySelectionProblem, Selection, SolverStats};
pub use solver::{Solver, SolverScratch};
pub use voting::{majority_vote, weighted_majority_vote, Decision, Voting};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::altr::{AltrAlg, AltrConfig, AltrStrategy};
    pub use crate::error::JuryError;
    pub use crate::exact::{exact_paym, exact_paym_parallel, ExactConfig, ExactPaym};
    pub use crate::fingerprint::{FingerprintKey, PoolFingerprint};
    pub use crate::jer::{jer_lower_bound, JerEngine, JerScratch};
    pub use crate::juror::{ErrorRate, Juror};
    pub use crate::jury::Jury;
    pub use crate::metrics::{precision_recall, PrecisionRecall};
    pub use crate::model::CrowdModel;
    pub use crate::paym::{PayAlg, PayConfig, Staircase};
    pub use crate::problem::{JurySelectionProblem, Selection, SolverStats};
    pub use crate::solver::{Solver, SolverScratch};
    pub use crate::voting::{majority_vote, weighted_majority_vote, Decision, Voting};
}
