//! `PayALG` — the greedy heuristic for JSP on PayM (Algorithm 4, §3.3).
//!
//! JSP under PayM is NP-hard (Lemma 4 reduces an nth-order Knapsack
//! Problem to it), so the paper proposes a knapsack-style greedy:
//!
//! 1. sort candidates ascending by `ε_i · r_i` — cheap *and* reliable
//!    first;
//! 2. seed the jury with the first affordable candidate;
//! 3. walk the remaining candidates keeping a *pair* slot: because juries
//!    must stay odd, enlargements happen two jurors at a time. The first
//!    affordable candidate parks in the pair slot; when a second one fits
//!    the budget **and** the enlarged jury's JER does not degrade, both
//!    are admitted and the slot clears.
//!
//! The JER test uses an incrementally-maintained carelessness pmf: trying
//! a pair costs `O(n)` (two [`PoiBin::push`] calls on a copy) instead of a
//! fresh `O(n log n)` CBA run — the scan stays `O(N²)` worst case and
//! `O(N·n_final)` typically.

use crate::error::JuryError;
use crate::jer::JerEngine;
use crate::juror::Juror;
use crate::problem::{Selection, SolverStats};
use crate::solver::{Solver, SolverScratch};
use jury_numeric::poibin::PoiBin;

/// Configuration for [`PayAlg::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PayConfig {
    /// Accept an enlargement only when it *strictly* improves JER.
    /// Algorithm 4 as printed uses `≤` (non-degrading); strict mode is an
    /// ablation that tends to produce smaller, cheaper juries with equal
    /// JER. Default: paper-faithful `false`.
    pub strict_improvement: bool,
}

/// The PayM greedy solver, holding its budget and configuration. The old
/// entry point (`PayAlg::solve(pool, budget, &config)`) keeps working as
/// an associated function; a configured value implements [`Solver`] for
/// the service layer and reuses caller-provided scratch buffers.
#[derive(Debug, Clone, Copy)]
pub struct PayAlg {
    /// Total payment budget `B ≥ 0`.
    pub budget: f64,
    /// Acceptance-rule configuration.
    pub config: PayConfig,
}

impl Default for PayAlg {
    /// Unlimited budget, paper-faithful acceptance.
    fn default() -> Self {
        Self { budget: f64::MAX, config: PayConfig::default() }
    }
}

impl PayAlg {
    /// A solver value with the given budget and configuration.
    pub fn new(budget: f64, config: PayConfig) -> Self {
        Self { budget, config }
    }

    /// Runs Algorithm 4 on `pool` with budget `budget`.
    ///
    /// Returned member indices refer to positions in `pool`.
    ///
    /// # Errors
    /// * [`JuryError::EmptyPool`] when `pool` is empty;
    /// * [`JuryError::InvalidBudget`] for negative or non-finite budgets;
    /// * [`JuryError::NoFeasibleJury`] when no single candidate is
    ///   affordable.
    pub fn solve(pool: &[Juror], budget: f64, config: &PayConfig) -> Result<Selection, JuryError> {
        Self { budget, config: *config }.solve_with(pool, &mut SolverScratch::new())
    }

    /// The greedy visit order of Algorithm 4 line 1 as a total order over
    /// pool positions: ascending `ε_i·r_i`, ties broken by cost, then ε,
    /// then position. Strict for distinct positions, so per-shard sorted
    /// runs K-way-merge into exactly the global order (see
    /// [`crate::merge`]).
    #[inline]
    pub fn greedy_cmp(pool: &[Juror], a: usize, b: usize) -> std::cmp::Ordering {
        pool[a]
            .greedy_key()
            .total_cmp(&pool[b].greedy_key())
            .then(pool[a].cost.total_cmp(&pool[b].cost))
            .then(pool[a].epsilon().total_cmp(&pool[b].epsilon()))
            .then(a.cmp(&b))
    }

    /// Writes the greedy visit order of Algorithm 4 line 1 into `order`:
    /// ascending `ε_i·r_i` (ties: cheaper, then more reliable, then lower
    /// index — deterministic). The order depends only on the pool, not
    /// the budget, so a serving layer caches it per pool and replays it
    /// across tasks via [`PayAlg::solve_presorted`].
    pub fn greedy_order_into(pool: &[Juror], order: &mut Vec<usize>) {
        order.clear();
        order.extend(0..pool.len());
        order.sort_by(|&a, &b| Self::greedy_cmp(pool, a, b));
    }

    /// The scratch-threaded form of [`PayAlg::solve`]: bit-identical
    /// results; with warm buffers the only allocation is the returned
    /// [`Selection`].
    pub fn solve_with(
        &self,
        pool: &[Juror],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        let SolverScratch { order, pmf, trial, .. } = scratch;
        Self::greedy_order_into(pool, order);
        self.scan(pool, order, pmf, trial)
    }

    /// Runs the greedy scan over a precomputed visit order (which must be
    /// exactly what [`PayAlg::greedy_order_into`] produces for `pool`) —
    /// the cache-hit path of the serving layer. Bit-identical to
    /// [`PayAlg::solve`].
    pub fn solve_presorted(
        &self,
        pool: &[Juror],
        order: &[usize],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        debug_assert_eq!(order.len(), pool.len(), "order must cover the pool");
        let SolverScratch { pmf, trial, .. } = scratch;
        self.scan(pool, order, pmf, trial)
    }

    /// Algorithm 4 lines 2-16 over an already-sorted candidate order.
    fn scan(
        &self,
        pool: &[Juror],
        order: &[usize],
        pmf: &mut PoiBin,
        trial: &mut PoiBin,
    ) -> Result<Selection, JuryError> {
        let budget = self.budget;
        let config = &self.config;
        if pool.is_empty() {
            return Err(JuryError::EmptyPool);
        }
        if !budget.is_finite() && budget != f64::MAX {
            return Err(JuryError::InvalidBudget(budget));
        }
        if budget < 0.0 {
            return Err(JuryError::InvalidBudget(budget));
        }
        let mut stats = SolverStats::default();

        // Lines 3-5: first affordable candidate seeds the jury.
        let Some(first_pos) = order.iter().position(|&i| pool[i].cost <= budget) else {
            return Err(JuryError::NoFeasibleJury { budget });
        };
        let seed = order[first_pos];
        let mut members = vec![seed];
        let mut spent = pool[seed].cost;
        pmf.reset();
        pmf.push(pool[seed].epsilon());
        let mut jer = pmf.tail(1);
        stats.jer_evaluations += 1;

        // Lines 8-16: pairwise enlargement.
        let mut pair: Option<usize> = None;
        for &cand in &order[first_pos + 1..] {
            stats.candidates_considered += 1;
            match pair {
                None => {
                    if pool[cand].cost + spent <= budget {
                        pair = Some(cand);
                    }
                }
                Some(p) => {
                    let pair_cost = pool[p].cost + pool[cand].cost;
                    if spent + pair_cost <= budget {
                        trial.copy_from(pmf);
                        trial.push(pool[p].epsilon());
                        trial.push(pool[cand].epsilon());
                        let n = members.len() + 2;
                        let trial_jer = trial.tail(JerEngine::majority_threshold(n));
                        stats.jer_evaluations += 1;
                        let accept = if config.strict_improvement {
                            trial_jer < jer
                        } else {
                            trial_jer <= jer
                        };
                        if accept {
                            members.push(p);
                            members.push(cand);
                            spent += pair_cost;
                            std::mem::swap(pmf, trial);
                            jer = trial_jer;
                            pair = None;
                        }
                    }
                }
            }
        }

        members.sort_unstable();
        Ok(Selection { members, jer, total_cost: spent, stats })
    }
}

impl Solver for PayAlg {
    fn name(&self) -> &'static str {
        "paym"
    }

    fn solve(
        &mut self,
        pool: &[Juror],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        self.solve_with(pool, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::{pool_from_rates_and_costs, ErrorRate, Juror};

    /// Figure 1 pool: (ε, r) for users A..G.
    fn figure1_pool() -> Vec<Juror> {
        pool_from_rates_and_costs(&[
            (0.1, 0.2),  // A
            (0.2, 0.2),  // B
            (0.2, 0.3),  // C
            (0.3, 0.4),  // D
            (0.3, 0.65), // E
            (0.4, 0.05), // F
            (0.4, 0.05), // G
        ])
        .unwrap()
    }

    #[test]
    fn respects_budget() {
        let pool = figure1_pool();
        for budget in [0.05, 0.1, 0.3, 0.5, 1.0, 2.0] {
            let sel = PayAlg::solve(&pool, budget, &PayConfig::default()).unwrap();
            assert!(sel.total_cost <= budget + 1e-12, "budget {budget}");
            assert_eq!(sel.size() % 2, 1, "budget {budget}");
            // Reported cost must equal the members' summed costs.
            let recomputed: f64 = sel.members.iter().map(|&i| pool[i].cost).sum();
            assert!((sel.total_cost - recomputed).abs() < 1e-12);
        }
    }

    #[test]
    fn generous_budget_reaches_good_jury() {
        // With budget 2.0 everything (1.85 total) is affordable; greedy
        // should land at a jury at least as good as the best single juror.
        let pool = figure1_pool();
        let sel = PayAlg::solve(&pool, 2.0, &PayConfig::default()).unwrap();
        assert!(sel.jer <= 0.1 + 1e-12);
        assert!(sel.size() >= 3);
    }

    #[test]
    fn tight_budget_returns_single_affordable_juror() {
        // Budget 0.05: only F or G (cost 0.05) are affordable.
        let pool = figure1_pool();
        let sel = PayAlg::solve(&pool, 0.05, &PayConfig::default()).unwrap();
        assert_eq!(sel.size(), 1);
        assert!(sel.members == vec![5] || sel.members == vec![6]);
        assert!((sel.jer - 0.4).abs() < 1e-12);
    }

    #[test]
    fn no_affordable_juror_is_an_error() {
        let pool = figure1_pool();
        assert_eq!(
            PayAlg::solve(&pool, 0.01, &PayConfig::default()),
            Err(JuryError::NoFeasibleJury { budget: 0.01 })
        );
    }

    #[test]
    fn zero_budget_with_free_jurors_works() {
        let e = ErrorRate::new(0.3).unwrap();
        let pool: Vec<Juror> = (0..5).map(|i| Juror::new(i, e, 0.0)).collect();
        let sel = PayAlg::solve(&pool, 0.0, &PayConfig::default()).unwrap();
        assert_eq!(sel.total_cost, 0.0);
        assert_eq!(sel.size(), 5); // free homogeneous jurors: all admitted
    }

    #[test]
    fn empty_pool_and_bad_budget() {
        assert_eq!(PayAlg::solve(&[], 1.0, &PayConfig::default()), Err(JuryError::EmptyPool));
        let pool = figure1_pool();
        assert!(matches!(
            PayAlg::solve(&pool, -0.5, &PayConfig::default()),
            Err(JuryError::InvalidBudget(_))
        ));
        assert!(matches!(
            PayAlg::solve(&pool, f64::NAN, &PayConfig::default()),
            Err(JuryError::InvalidBudget(_))
        ));
    }

    #[test]
    fn enlargement_never_degrades_jer() {
        // The acceptance test guarantees final JER ≤ the seed juror's ε,
        // where the seed is the first affordable juror in the solver's
        // (key, cost, ε, index) order.
        let pool = figure1_pool();
        for budget in [0.2, 0.4, 0.6, 0.8, 1.0, 1.5] {
            let sel = PayAlg::solve(&pool, budget, &PayConfig::default()).unwrap();
            let mut order: Vec<usize> = (0..pool.len()).collect();
            order.sort_by(|&a, &b| {
                pool[a]
                    .greedy_key()
                    .total_cmp(&pool[b].greedy_key())
                    .then(pool[a].cost.total_cmp(&pool[b].cost))
                    .then(pool[a].epsilon().total_cmp(&pool[b].epsilon()))
                    .then(a.cmp(&b))
            });
            let seed_eps = order
                .iter()
                .map(|&i| &pool[i])
                .find(|j| j.cost <= budget)
                .map(|j| j.epsilon())
                .unwrap();
            assert!(
                sel.jer <= seed_eps + 1e-12,
                "budget {budget}: jer {} vs seed {seed_eps}",
                sel.jer
            );
        }
    }

    #[test]
    fn strict_mode_never_larger_than_lenient() {
        let e = ErrorRate::new(0.3).unwrap();
        // Homogeneous ε and zero costs: enlargements keep JER *equal* only
        // when ε = 0.5; with ε = 0.3 bigger is strictly better, so both
        // modes agree. With ε = 0.5 lenient grows, strict stays at 1.
        let pool: Vec<Juror> =
            (0..7).map(|i| Juror::new(i, ErrorRate::new(0.5).unwrap(), 0.0)).collect();
        let lenient = PayAlg::solve(&pool, 1.0, &PayConfig::default()).unwrap();
        let strict = PayAlg::solve(&pool, 1.0, &PayConfig { strict_improvement: true }).unwrap();
        assert!(strict.size() <= lenient.size());
        assert_eq!(strict.size(), 1);
        assert!((strict.jer - lenient.jer).abs() < 1e-12);

        let pool: Vec<Juror> = (0..7).map(|i| Juror::new(i, e, 0.0)).collect();
        let lenient = PayAlg::solve(&pool, 1.0, &PayConfig::default()).unwrap();
        let strict = PayAlg::solve(&pool, 1.0, &PayConfig { strict_improvement: true }).unwrap();
        assert_eq!(strict.members, lenient.members);
    }

    #[test]
    fn greedy_sort_prefers_cheap_reliable() {
        // ε·r keys: A: .02, B: .04, C: .06, D: .12, E: .195, F: .02, G: .02
        // With budget .45 the seed is A (key .02 ties with F,G; cheaper?
        // no — F,G cost 0.05 < 0.2 so F wins the cost tie-break at equal
        // key). Verify determinism rather than a specific winner:
        let pool = figure1_pool();
        let a = PayAlg::solve(&pool, 0.45, &PayConfig::default()).unwrap();
        let b = PayAlg::solve(&pool, 0.45, &PayConfig::default()).unwrap();
        assert_eq!(a, b);
        assert!(a.total_cost <= 0.45 + 1e-12);
    }

    #[test]
    fn budget_exactly_covering_one_pair_is_used() {
        // Seed (free) + pair of cost 0.5 each, budget 1.0: both admitted
        // since homogeneous ε=0.2 and size 3 beats size 1.
        let e = ErrorRate::new(0.2).unwrap();
        let pool = vec![Juror::new(0, e, 0.0), Juror::new(1, e, 0.5), Juror::new(2, e, 0.5)];
        let sel = PayAlg::solve(&pool, 1.0, &PayConfig::default()).unwrap();
        assert_eq!(sel.members, vec![0, 1, 2]);
        assert!((sel.total_cost - 1.0).abs() < 1e-12);
        assert!((sel.jer - 0.104).abs() < 1e-12); // 3·(.2²·.8)+.2³ = 0.104
    }

    #[test]
    fn stats_count_work() {
        let pool = figure1_pool();
        let sel = PayAlg::solve(&pool, 1.0, &PayConfig::default()).unwrap();
        assert!(sel.stats.jer_evaluations >= 1);
        assert_eq!(sel.stats.candidates_considered, 6); // everyone after the seed
    }
}
