//! `PayALG` — the greedy heuristic for JSP on PayM (Algorithm 4, §3.3).
//!
//! JSP under PayM is NP-hard (Lemma 4 reduces an nth-order Knapsack
//! Problem to it), so the paper proposes a knapsack-style greedy:
//!
//! 1. sort candidates ascending by `ε_i · r_i` — cheap *and* reliable
//!    first;
//! 2. seed the jury with the first affordable candidate;
//! 3. walk the remaining candidates keeping a *pair* slot: because juries
//!    must stay odd, enlargements happen two jurors at a time. The first
//!    affordable candidate parks in the pair slot; when a second one fits
//!    the budget **and** the enlarged jury's JER does not degrade, both
//!    are admitted and the slot clears.
//!
//! The JER test uses an incrementally-maintained carelessness pmf: trying
//! a pair costs `O(n)` (two [`PoiBin::push`] calls on a copy) instead of a
//! fresh `O(n log n)` CBA run — the scan stays `O(N²)` worst case and
//! `O(N·n_final)` typically.
//!
//! # The budget staircase
//!
//! The budget enters Algorithm 4 only through affordability comparisons
//! `t ≤ B` whose thresholds `t` are cost sums determined by the trace so
//! far — so the selection is **piecewise constant in the budget**: the
//! whole budget axis collapses into a finite staircase of selections.
//! [`Staircase`] materialises that structure one step at a time: each
//! [`PayAlg::solve_staircase`] miss runs the ordinary greedy scan *once*,
//! instrumented to record the window `[lo, hi)` (`lo` = largest threshold
//! that passed, `hi` = smallest that failed) on which every comparison —
//! and therefore the entire admission trace, float op for float op —
//! replays identically. Any later budget inside a recorded window is
//! answered by binary search plus a clone of the stored [`Selection`],
//! **bit-identical** to [`PayAlg::solve_presorted`] (stats included)
//! because the step was produced by exactly that scan.

use crate::error::JuryError;
use crate::jer::JerEngine;
use crate::juror::Juror;
use crate::problem::{Selection, SolverStats};
use crate::solver::{Solver, SolverScratch};
use jury_numeric::poibin::PoiBin;

/// Configuration for [`PayAlg::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PayConfig {
    /// Accept an enlargement only when it *strictly* improves JER.
    /// Algorithm 4 as printed uses `≤` (non-degrading); strict mode is an
    /// ablation that tends to produce smaller, cheaper juries with equal
    /// JER. Default: paper-faithful `false`.
    pub strict_improvement: bool,
}

/// The PayM greedy solver, holding its budget and configuration. The old
/// entry point (`PayAlg::solve(pool, budget, &config)`) keeps working as
/// an associated function; a configured value implements [`Solver`] for
/// the service layer and reuses caller-provided scratch buffers.
#[derive(Debug, Clone, Copy)]
pub struct PayAlg {
    /// Total payment budget `B ≥ 0`.
    pub budget: f64,
    /// Acceptance-rule configuration.
    pub config: PayConfig,
}

impl Default for PayAlg {
    /// Unlimited budget, paper-faithful acceptance.
    fn default() -> Self {
        Self { budget: f64::MAX, config: PayConfig::default() }
    }
}

impl PayAlg {
    /// A solver value with the given budget and configuration.
    pub fn new(budget: f64, config: PayConfig) -> Self {
        Self { budget, config }
    }

    /// Runs Algorithm 4 on `pool` with budget `budget`.
    ///
    /// Returned member indices refer to positions in `pool`.
    ///
    /// # Errors
    /// * [`JuryError::EmptyPool`] when `pool` is empty;
    /// * [`JuryError::InvalidBudget`] for negative or non-finite budgets;
    /// * [`JuryError::NoFeasibleJury`] when no single candidate is
    ///   affordable.
    pub fn solve(pool: &[Juror], budget: f64, config: &PayConfig) -> Result<Selection, JuryError> {
        Self { budget, config: *config }.solve_with(pool, &mut SolverScratch::new())
    }

    /// The greedy visit order of Algorithm 4 line 1 as a total order over
    /// pool positions: ascending `ε_i·r_i`, ties broken by cost, then ε,
    /// then position. Strict for distinct positions, so per-shard sorted
    /// runs K-way-merge into exactly the global order (see
    /// [`crate::merge`]).
    #[inline]
    pub fn greedy_cmp(pool: &[Juror], a: usize, b: usize) -> std::cmp::Ordering {
        pool[a]
            .greedy_key()
            .total_cmp(&pool[b].greedy_key())
            .then(pool[a].cost.total_cmp(&pool[b].cost))
            .then(pool[a].epsilon().total_cmp(&pool[b].epsilon()))
            .then(a.cmp(&b))
    }

    /// Writes the greedy visit order of Algorithm 4 line 1 into `order`:
    /// ascending `ε_i·r_i` (ties: cheaper, then more reliable, then lower
    /// index — deterministic). The order depends only on the pool, not
    /// the budget, so a serving layer caches it per pool and replays it
    /// across tasks via [`PayAlg::solve_presorted`].
    pub fn greedy_order_into(pool: &[Juror], order: &mut Vec<usize>) {
        order.clear();
        order.extend(0..pool.len());
        order.sort_by(|&a, &b| Self::greedy_cmp(pool, a, b));
    }

    /// The scratch-threaded form of [`PayAlg::solve`]: bit-identical
    /// results; with warm buffers the only allocation is the returned
    /// [`Selection`].
    pub fn solve_with(
        &self,
        pool: &[Juror],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        let SolverScratch { order, pmf, trial, .. } = scratch;
        Self::greedy_order_into(pool, order);
        self.scan(pool, order, pmf, trial)
    }

    /// Runs the greedy scan over a precomputed visit order (which must be
    /// exactly what [`PayAlg::greedy_order_into`] produces for `pool`) —
    /// the cache-hit path of the serving layer. Bit-identical to
    /// [`PayAlg::solve`].
    pub fn solve_presorted(
        &self,
        pool: &[Juror],
        order: &[usize],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        debug_assert_eq!(order.len(), pool.len(), "order must cover the pool");
        let SolverScratch { pmf, trial, .. } = scratch;
        self.scan(pool, order, pmf, trial)
    }

    /// Runs the greedy scan over a precomputed visit order through a
    /// budget [`Staircase`]: a budget inside an already-recorded step is
    /// answered by binary search plus a clone of the stored selection; a
    /// miss runs the instrumented scan once and records the step. Either
    /// way the result is **bit-identical** to
    /// [`PayAlg::solve_presorted`] on the same `pool` and `order` —
    /// members, JER bits, cost bits and [`SolverStats`] — because a step
    /// is only ever certified for the budget window on which the whole
    /// admission trace is constant.
    ///
    /// The staircase is tied to this `(pool, order, config)` snapshot:
    /// callers must [`Staircase::clear`] it whenever any of the three
    /// change.
    pub fn solve_staircase(
        &self,
        pool: &[Juror],
        order: &[usize],
        staircase: &mut Staircase,
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        if let Some(replay) = staircase.lookup(self.budget) {
            return replay;
        }
        debug_assert_eq!(order.len(), pool.len(), "order must cover the pool");
        let SolverScratch { pmf, trial, .. } = scratch;
        let mut window = StepWindow::new();
        let result = self.scan_traced(pool, order, pmf, trial, &mut window);
        match &result {
            Ok(selection) => staircase.record(window, Some(selection.clone())),
            Err(JuryError::NoFeasibleJury { .. }) => staircase.record(window, None),
            // Invalid budgets and empty pools are not budget intervals.
            Err(_) => {}
        }
        result
    }

    /// Algorithm 4 lines 2-16 over an already-sorted candidate order.
    fn scan(
        &self,
        pool: &[Juror],
        order: &[usize],
        pmf: &mut PoiBin,
        trial: &mut PoiBin,
    ) -> Result<Selection, JuryError> {
        self.scan_traced(pool, order, pmf, trial, &mut IgnoreWindow)
    }

    /// The scan with every affordability comparison `t ≤ budget` reported
    /// to `window`. [`IgnoreWindow`] compiles the reports away, keeping
    /// the plain path's codegen; [`StepWindow`] accumulates the budget
    /// interval on which this exact trace replays.
    fn scan_traced<W: BudgetTrace>(
        &self,
        pool: &[Juror],
        order: &[usize],
        pmf: &mut PoiBin,
        trial: &mut PoiBin,
        window: &mut W,
    ) -> Result<Selection, JuryError> {
        let budget = self.budget;
        let config = &self.config;
        if pool.is_empty() {
            return Err(JuryError::EmptyPool);
        }
        if !budget.is_finite() && budget != f64::MAX {
            return Err(JuryError::InvalidBudget(budget));
        }
        if budget < 0.0 {
            return Err(JuryError::InvalidBudget(budget));
        }
        let mut stats = SolverStats::default();

        // Lines 3-5: first affordable candidate seeds the jury.
        let mut first_pos = None;
        for (pos, &i) in order.iter().enumerate() {
            if pool[i].cost <= budget {
                window.passed(pool[i].cost);
                first_pos = Some(pos);
                break;
            }
            window.failed(pool[i].cost);
        }
        let Some(first_pos) = first_pos else {
            return Err(JuryError::NoFeasibleJury { budget });
        };
        let seed = order[first_pos];
        let mut members = vec![seed];
        let mut spent = pool[seed].cost;
        pmf.reset();
        pmf.push(pool[seed].epsilon());
        let mut jer = pmf.tail(1);
        stats.jer_evaluations += 1;

        // Lines 8-16: pairwise enlargement.
        let mut pair: Option<usize> = None;
        for &cand in &order[first_pos + 1..] {
            stats.candidates_considered += 1;
            match pair {
                None => {
                    let threshold = pool[cand].cost + spent;
                    if threshold <= budget {
                        window.passed(threshold);
                        pair = Some(cand);
                    } else {
                        window.failed(threshold);
                    }
                }
                Some(p) => {
                    let pair_cost = pool[p].cost + pool[cand].cost;
                    let threshold = spent + pair_cost;
                    if threshold <= budget {
                        window.passed(threshold);
                        trial.copy_from(pmf);
                        trial.push(pool[p].epsilon());
                        trial.push(pool[cand].epsilon());
                        let n = members.len() + 2;
                        let trial_jer = trial.tail(JerEngine::majority_threshold(n));
                        stats.jer_evaluations += 1;
                        let accept = if config.strict_improvement {
                            trial_jer < jer
                        } else {
                            trial_jer <= jer
                        };
                        if accept {
                            members.push(p);
                            members.push(cand);
                            spent += pair_cost;
                            std::mem::swap(pmf, trial);
                            jer = trial_jer;
                            pair = None;
                        }
                    } else {
                        window.failed(threshold);
                    }
                }
            }
        }

        members.sort_unstable();
        Ok(Selection { members, jer, total_cost: spent, stats })
    }
}

/// Witness for the scan's budget comparisons (see
/// [`PayAlg::scan_traced`]).
trait BudgetTrace {
    /// A comparison `threshold ≤ budget` that succeeded.
    fn passed(&mut self, threshold: f64);
    /// A comparison `threshold ≤ budget` that failed.
    fn failed(&mut self, threshold: f64);
}

/// No-op witness for the plain solve paths.
struct IgnoreWindow;

impl BudgetTrace for IgnoreWindow {
    #[inline]
    fn passed(&mut self, _: f64) {}
    #[inline]
    fn failed(&mut self, _: f64) {}
}

/// Accumulates the half-open budget interval `[lo, hi)` on which every
/// comparison the scan made keeps its outcome: `lo` is the largest
/// threshold that passed (thresholds are non-negative cost sums, so the
/// interval is clamped to start at 0), `hi` the smallest that failed.
#[derive(Debug, Clone, Copy)]
struct StepWindow {
    lo: f64,
    hi: f64,
}

impl StepWindow {
    fn new() -> Self {
        Self { lo: 0.0, hi: f64::INFINITY }
    }
}

impl BudgetTrace for StepWindow {
    #[inline]
    fn passed(&mut self, threshold: f64) {
        if threshold > self.lo {
            self.lo = threshold;
        }
    }

    #[inline]
    fn failed(&mut self, threshold: f64) {
        if threshold < self.hi {
            self.hi = threshold;
        }
    }
}

/// One recorded step of the budget staircase: on `[lo, hi)` the greedy
/// trace is constant and yields `selection` (`None` marks the
/// no-affordable-juror interval below the cheapest candidate).
#[derive(Debug, Clone)]
struct Step {
    lo: f64,
    hi: f64,
    selection: Option<Selection>,
}

/// Upper bound on recorded steps: beyond it, misses still solve correctly
/// but are no longer memoised, bounding memory under adversarial budget
/// streams. Real workloads see a handful of steps per pool.
const MAX_STAIRCASE_STEPS: usize = 4096;

/// The PayM budget→selection staircase of one `(pool, visit order,
/// config)` snapshot — a sorted, disjoint set of half-open budget
/// intervals each carrying the [`Selection`] the greedy scan produces
/// anywhere inside it (see the module docs). Steps are recorded lazily by
/// [`PayAlg::solve_staircase`]; serving layers cache one staircase per
/// pool generation and clear it on any juror mutation.
#[derive(Debug, Clone, Default)]
pub struct Staircase {
    steps: Vec<Step>,
}

impl Staircase {
    /// An empty staircase (steps are recorded on demand).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every recorded step — required whenever the pool, the visit
    /// order or the solver configuration changes.
    pub fn clear(&mut self) {
        self.steps.clear();
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no step has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether some recorded step covers `budget` — a containment probe
    /// that, unlike [`Staircase::lookup`], clones nothing.
    pub fn covers(&self, budget: f64) -> bool {
        if !(budget.is_finite() && budget >= 0.0) {
            return false;
        }
        let idx = self.steps.partition_point(|s| s.lo <= budget);
        self.steps[..idx].last().is_some_and(|s| budget < s.hi)
    }

    /// Replays the recorded outcome for `budget`, if some step covers it:
    /// a clone of the stored selection, or the
    /// [`JuryError::NoFeasibleJury`] the scan would report. Returns
    /// `None` (caller must run the scan) for uncovered or invalid
    /// budgets.
    pub fn lookup(&self, budget: f64) -> Option<Result<Selection, JuryError>> {
        if !(budget.is_finite() && budget >= 0.0) {
            return None;
        }
        let idx = self.steps.partition_point(|s| s.lo <= budget);
        let step = self.steps[..idx].last()?;
        if budget >= step.hi {
            return None;
        }
        Some(match &step.selection {
            Some(selection) => Ok(selection.clone()),
            None => Err(JuryError::NoFeasibleJury { budget }),
        })
    }

    /// Records one scan outcome on its certified window, trimming against
    /// already-recorded neighbours (overlapping regions are certified by
    /// both traces and therefore agree).
    fn record(&mut self, window: StepWindow, selection: Option<Selection>) {
        if self.steps.len() >= MAX_STAIRCASE_STEPS {
            return;
        }
        let StepWindow { mut lo, mut hi } = window;
        let idx = self.steps.partition_point(|s| s.lo <= lo);
        if let Some(prev) = idx.checked_sub(1).and_then(|i| self.steps.get(i)) {
            lo = lo.max(prev.hi);
        }
        if let Some(next) = self.steps.get(idx) {
            hi = hi.min(next.lo);
        }
        if lo < hi {
            self.steps.insert(idx, Step { lo, hi, selection });
        }
    }

    /// Every recorded replay selection, in ascending budget order —
    /// lets a consumer that persists staircases (the service's snapshot
    /// restore) bounds-check member indices against its own pool size
    /// without reaching into the step representation.
    pub fn selections(&self) -> impl Iterator<Item = &Selection> {
        self.steps.iter().filter_map(|s| s.selection.as_ref())
    }

    /// Raw step windows for the wire codec: `(lo, hi, selection)` in
    /// ascending budget order. `hi` may be `+∞` (the topmost window).
    pub(crate) fn steps_raw(&self) -> impl Iterator<Item = (f64, f64, Option<&Selection>)> {
        self.steps.iter().map(|s| (s.lo, s.hi, s.selection.as_ref()))
    }

    /// Rebuilds a staircase from decoded steps, re-validating every
    /// invariant [`Staircase::record`] maintains — wire steps are
    /// untrusted. Rejects (with `None`) any step list that is over the
    /// [`MAX_STAIRCASE_STEPS`] cap, has a non-finite or negative `lo`, a
    /// NaN or non-increasing `hi`, or overlapping / out-of-order windows.
    pub(crate) fn from_steps_raw(raw: Vec<(f64, f64, Option<Selection>)>) -> Option<Self> {
        if raw.len() > MAX_STAIRCASE_STEPS {
            return None;
        }
        let mut prev_hi = 0.0f64;
        for &(lo, hi, _) in &raw {
            // `lo < hi` is false for NaN on either side; `hi` may be +∞.
            if !(lo.is_finite() && lo >= 0.0 && lo < hi && lo >= prev_hi) {
                return None;
            }
            prev_hi = hi;
        }
        Some(Self {
            steps: raw.into_iter().map(|(lo, hi, selection)| Step { lo, hi, selection }).collect(),
        })
    }
}

impl Solver for PayAlg {
    fn name(&self) -> &'static str {
        "paym"
    }

    fn solve(
        &mut self,
        pool: &[Juror],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        self.solve_with(pool, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::{pool_from_rates_and_costs, ErrorRate, Juror};

    /// Figure 1 pool: (ε, r) for users A..G.
    fn figure1_pool() -> Vec<Juror> {
        pool_from_rates_and_costs(&[
            (0.1, 0.2),  // A
            (0.2, 0.2),  // B
            (0.2, 0.3),  // C
            (0.3, 0.4),  // D
            (0.3, 0.65), // E
            (0.4, 0.05), // F
            (0.4, 0.05), // G
        ])
        .unwrap()
    }

    #[test]
    fn respects_budget() {
        let pool = figure1_pool();
        for budget in [0.05, 0.1, 0.3, 0.5, 1.0, 2.0] {
            let sel = PayAlg::solve(&pool, budget, &PayConfig::default()).unwrap();
            assert!(sel.total_cost <= budget + 1e-12, "budget {budget}");
            assert_eq!(sel.size() % 2, 1, "budget {budget}");
            // Reported cost must equal the members' summed costs.
            let recomputed: f64 = sel.members.iter().map(|&i| pool[i].cost).sum();
            assert!((sel.total_cost - recomputed).abs() < 1e-12);
        }
    }

    #[test]
    fn generous_budget_reaches_good_jury() {
        // With budget 2.0 everything (1.85 total) is affordable; greedy
        // should land at a jury at least as good as the best single juror.
        let pool = figure1_pool();
        let sel = PayAlg::solve(&pool, 2.0, &PayConfig::default()).unwrap();
        assert!(sel.jer <= 0.1 + 1e-12);
        assert!(sel.size() >= 3);
    }

    #[test]
    fn tight_budget_returns_single_affordable_juror() {
        // Budget 0.05: only F or G (cost 0.05) are affordable.
        let pool = figure1_pool();
        let sel = PayAlg::solve(&pool, 0.05, &PayConfig::default()).unwrap();
        assert_eq!(sel.size(), 1);
        assert!(sel.members == vec![5] || sel.members == vec![6]);
        assert!((sel.jer - 0.4).abs() < 1e-12);
    }

    #[test]
    fn no_affordable_juror_is_an_error() {
        let pool = figure1_pool();
        assert_eq!(
            PayAlg::solve(&pool, 0.01, &PayConfig::default()),
            Err(JuryError::NoFeasibleJury { budget: 0.01 })
        );
    }

    #[test]
    fn zero_budget_with_free_jurors_works() {
        let e = ErrorRate::new(0.3).unwrap();
        let pool: Vec<Juror> = (0..5).map(|i| Juror::new(i, e, 0.0)).collect();
        let sel = PayAlg::solve(&pool, 0.0, &PayConfig::default()).unwrap();
        assert_eq!(sel.total_cost, 0.0);
        assert_eq!(sel.size(), 5); // free homogeneous jurors: all admitted
    }

    #[test]
    fn empty_pool_and_bad_budget() {
        assert_eq!(PayAlg::solve(&[], 1.0, &PayConfig::default()), Err(JuryError::EmptyPool));
        let pool = figure1_pool();
        assert!(matches!(
            PayAlg::solve(&pool, -0.5, &PayConfig::default()),
            Err(JuryError::InvalidBudget(_))
        ));
        assert!(matches!(
            PayAlg::solve(&pool, f64::NAN, &PayConfig::default()),
            Err(JuryError::InvalidBudget(_))
        ));
    }

    #[test]
    fn enlargement_never_degrades_jer() {
        // The acceptance test guarantees final JER ≤ the seed juror's ε,
        // where the seed is the first affordable juror in the solver's
        // (key, cost, ε, index) order.
        let pool = figure1_pool();
        for budget in [0.2, 0.4, 0.6, 0.8, 1.0, 1.5] {
            let sel = PayAlg::solve(&pool, budget, &PayConfig::default()).unwrap();
            let mut order: Vec<usize> = (0..pool.len()).collect();
            order.sort_by(|&a, &b| {
                pool[a]
                    .greedy_key()
                    .total_cmp(&pool[b].greedy_key())
                    .then(pool[a].cost.total_cmp(&pool[b].cost))
                    .then(pool[a].epsilon().total_cmp(&pool[b].epsilon()))
                    .then(a.cmp(&b))
            });
            let seed_eps = order
                .iter()
                .map(|&i| &pool[i])
                .find(|j| j.cost <= budget)
                .map(|j| j.epsilon())
                .unwrap();
            assert!(
                sel.jer <= seed_eps + 1e-12,
                "budget {budget}: jer {} vs seed {seed_eps}",
                sel.jer
            );
        }
    }

    #[test]
    fn strict_mode_never_larger_than_lenient() {
        let e = ErrorRate::new(0.3).unwrap();
        // Homogeneous ε and zero costs: enlargements keep JER *equal* only
        // when ε = 0.5; with ε = 0.3 bigger is strictly better, so both
        // modes agree. With ε = 0.5 lenient grows, strict stays at 1.
        let pool: Vec<Juror> =
            (0..7).map(|i| Juror::new(i, ErrorRate::new(0.5).unwrap(), 0.0)).collect();
        let lenient = PayAlg::solve(&pool, 1.0, &PayConfig::default()).unwrap();
        let strict = PayAlg::solve(&pool, 1.0, &PayConfig { strict_improvement: true }).unwrap();
        assert!(strict.size() <= lenient.size());
        assert_eq!(strict.size(), 1);
        assert!((strict.jer - lenient.jer).abs() < 1e-12);

        let pool: Vec<Juror> = (0..7).map(|i| Juror::new(i, e, 0.0)).collect();
        let lenient = PayAlg::solve(&pool, 1.0, &PayConfig::default()).unwrap();
        let strict = PayAlg::solve(&pool, 1.0, &PayConfig { strict_improvement: true }).unwrap();
        assert_eq!(strict.members, lenient.members);
    }

    #[test]
    fn greedy_sort_prefers_cheap_reliable() {
        // ε·r keys: A: .02, B: .04, C: .06, D: .12, E: .195, F: .02, G: .02
        // With budget .45 the seed is A (key .02 ties with F,G; cheaper?
        // no — F,G cost 0.05 < 0.2 so F wins the cost tie-break at equal
        // key). Verify determinism rather than a specific winner:
        let pool = figure1_pool();
        let a = PayAlg::solve(&pool, 0.45, &PayConfig::default()).unwrap();
        let b = PayAlg::solve(&pool, 0.45, &PayConfig::default()).unwrap();
        assert_eq!(a, b);
        assert!(a.total_cost <= 0.45 + 1e-12);
    }

    #[test]
    fn budget_exactly_covering_one_pair_is_used() {
        // Seed (free) + pair of cost 0.5 each, budget 1.0: both admitted
        // since homogeneous ε=0.2 and size 3 beats size 1.
        let e = ErrorRate::new(0.2).unwrap();
        let pool = vec![Juror::new(0, e, 0.0), Juror::new(1, e, 0.5), Juror::new(2, e, 0.5)];
        let sel = PayAlg::solve(&pool, 1.0, &PayConfig::default()).unwrap();
        assert_eq!(sel.members, vec![0, 1, 2]);
        assert!((sel.total_cost - 1.0).abs() < 1e-12);
        assert!((sel.jer - 0.104).abs() < 1e-12); // 3·(.2²·.8)+.2³ = 0.104
    }

    #[test]
    fn stats_count_work() {
        let pool = figure1_pool();
        let sel = PayAlg::solve(&pool, 1.0, &PayConfig::default()).unwrap();
        assert!(sel.stats.jer_evaluations >= 1);
        assert_eq!(sel.stats.candidates_considered, 6); // everyone after the seed
    }

    /// Budgets hitting affordability cliffs exactly, just under, just
    /// over, and far between them.
    fn probe_budgets(pool: &[Juror]) -> Vec<f64> {
        let mut order = Vec::new();
        PayAlg::greedy_order_into(pool, &mut order);
        let mut budgets = vec![0.0, f64::MAX];
        let mut acc = 0.0;
        for &j in &order {
            acc += pool[j].cost;
            budgets.extend([acc, acc - 1e-9, acc + 1e-9, acc * 0.5, acc * 1.75]);
        }
        budgets
    }

    #[test]
    fn staircase_replays_bit_identical_to_presorted() {
        let pool = figure1_pool();
        let mut order = Vec::new();
        PayAlg::greedy_order_into(&pool, &mut order);
        let mut staircase = Staircase::new();
        let mut scratch = SolverScratch::new();
        for &budget in &probe_budgets(&pool) {
            let alg = PayAlg::new(budget, PayConfig::default());
            let direct = alg.solve_presorted(&pool, &order, &mut SolverScratch::new());
            // Miss (first visit) and hit (second visit) must both match.
            for round in 0..2 {
                let got = alg.solve_staircase(&pool, &order, &mut staircase, &mut scratch);
                match (&got, &direct) {
                    (Ok(g), Ok(d)) => {
                        assert_eq!(g, d, "budget {budget} round {round}");
                        assert_eq!(g.jer.to_bits(), d.jer.to_bits(), "budget {budget}");
                        assert_eq!(g.total_cost.to_bits(), d.total_cost.to_bits());
                        assert_eq!(g.stats, d.stats, "budget {budget}");
                    }
                    (Err(g), Err(d)) => assert_eq!(g, d, "budget {budget}"),
                    other => panic!("budget {budget}: {other:?}"),
                }
            }
        }
        // The ladder collapsed all probed budgets into few steps, and
        // repeats were answered from it.
        assert!(!staircase.is_empty());
        assert!(staircase.len() <= probe_budgets(&pool).len());
    }

    #[test]
    fn staircase_covers_infeasible_and_invalid_budgets() {
        let pool = figure1_pool(); // cheapest candidate costs 0.05
        let mut order = Vec::new();
        PayAlg::greedy_order_into(&pool, &mut order);
        let mut staircase = Staircase::new();
        let mut scratch = SolverScratch::new();
        let alg = PayAlg::new(0.01, PayConfig::default());
        assert_eq!(
            alg.solve_staircase(&pool, &order, &mut staircase, &mut scratch),
            Err(JuryError::NoFeasibleJury { budget: 0.01 })
        );
        assert_eq!(staircase.len(), 1, "the infeasible interval is a step");
        // A different infeasible budget replays from the step, carrying
        // its own budget in the error.
        assert_eq!(staircase.lookup(0.02), Some(Err(JuryError::NoFeasibleJury { budget: 0.02 })));
        // Invalid budgets never enter the staircase.
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(staircase.lookup(bad).is_none());
            let alg = PayAlg::new(bad, PayConfig::default());
            assert!(matches!(
                alg.solve_staircase(&pool, &order, &mut staircase, &mut scratch),
                Err(JuryError::InvalidBudget(_))
            ));
        }
        assert_eq!(staircase.len(), 1);
        // Clearing empties it.
        let mut cleared = staircase;
        cleared.clear();
        assert!(cleared.is_empty());
        assert!(cleared.lookup(0.01).is_none());
    }
}
