//! The [`Jury`] type — an odd-sized set of jurors (Definition 1).
//!
//! Majority voting needs an odd size to always produce a clear answer
//! (§2.1.1), so [`Jury::new`] rejects even sizes. The jury exposes its
//! majority threshold `(n+1)/2` and computes its JER through any
//! [`JerEngine`].

use crate::error::JuryError;
use crate::jer::JerEngine;
use crate::juror::Juror;

/// An odd-sized, non-empty set of jurors that can hold a voting.
#[derive(Debug, Clone, PartialEq)]
pub struct Jury {
    members: Vec<Juror>,
}

impl Jury {
    /// Validates and wraps a member list.
    ///
    /// # Errors
    /// [`JuryError::EmptyJury`] for no members,
    /// [`JuryError::EvenJurySize`] for an even count.
    pub fn new(members: Vec<Juror>) -> Result<Self, JuryError> {
        if members.is_empty() {
            return Err(JuryError::EmptyJury);
        }
        if members.len().is_multiple_of(2) {
            return Err(JuryError::EvenJurySize(members.len()));
        }
        Ok(Self { members })
    }

    /// The jurors, in the order supplied.
    #[inline]
    pub fn members(&self) -> &[Juror] {
        &self.members
    }

    /// Jury size `n` (odd).
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The majority threshold `(n+1)/2`: a voting fails when at least this
    /// many jurors are wrong (Definition 6).
    #[inline]
    pub fn majority_threshold(&self) -> usize {
        self.members.len().div_ceil(2)
    }

    /// Individual error rates in member order.
    pub fn error_rates(&self) -> Vec<f64> {
        self.members.iter().map(Juror::epsilon).collect()
    }

    /// Total payment requirement of all members.
    pub fn total_cost(&self) -> f64 {
        self.members.iter().map(|j| j.cost).sum()
    }

    /// Jury Error Rate (Definition 6) computed by `engine`.
    pub fn jer(&self, engine: JerEngine) -> f64 {
        engine.jer(&self.error_rates())
    }

    /// Member ids in member order.
    pub fn ids(&self) -> Vec<u32> {
        self.members.iter().map(|j| j.id).collect()
    }
}

impl TryFrom<Vec<Juror>> for Jury {
    type Error = JuryError;
    fn try_from(members: Vec<Juror>) -> Result<Self, JuryError> {
        Self::new(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::{pool_from_rates, ErrorRate};

    fn jury_of(rates: &[f64]) -> Jury {
        Jury::new(pool_from_rates(rates).unwrap()).unwrap()
    }

    #[test]
    fn accepts_odd_sizes() {
        for n in [1usize, 3, 5, 7, 21] {
            let rates = vec![0.3; n];
            assert_eq!(jury_of(&rates).size(), n);
        }
    }

    #[test]
    fn rejects_even_and_empty() {
        assert_eq!(Jury::new(vec![]), Err(JuryError::EmptyJury));
        let two = pool_from_rates(&[0.1, 0.2]).unwrap();
        assert_eq!(Jury::new(two), Err(JuryError::EvenJurySize(2)));
    }

    #[test]
    fn majority_threshold_is_half_plus_one() {
        assert_eq!(jury_of(&[0.1; 1]).majority_threshold(), 1);
        assert_eq!(jury_of(&[0.1; 3]).majority_threshold(), 2);
        assert_eq!(jury_of(&[0.1; 5]).majority_threshold(), 3);
        assert_eq!(jury_of(&[0.1; 9]).majority_threshold(), 5);
    }

    #[test]
    fn jer_of_singleton_is_its_error_rate() {
        let j = jury_of(&[0.2]);
        assert!((j.jer(JerEngine::Auto) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn jer_motivating_example() {
        let j = jury_of(&[0.2, 0.3, 0.3]);
        assert!((j.jer(JerEngine::Auto) - 0.174).abs() < 1e-12);
    }

    #[test]
    fn total_cost_sums_members() {
        let e = ErrorRate::new(0.3).unwrap();
        let jury =
            Jury::new(vec![Juror::new(0, e, 0.25), Juror::new(1, e, 0.5), Juror::new(2, e, 0.0)])
                .unwrap();
        assert!((jury.total_cost() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn accessors_round_trip() {
        let j = jury_of(&[0.1, 0.2, 0.3]);
        assert_eq!(j.ids(), vec![0, 1, 2]);
        assert_eq!(j.error_rates(), vec![0.1, 0.2, 0.3]);
        assert_eq!(j.members().len(), 3);
    }

    #[test]
    fn try_from_vec() {
        let pool = pool_from_rates(&[0.1, 0.2, 0.3]).unwrap();
        let jury: Jury = pool.try_into().unwrap();
        assert_eq!(jury.size(), 3);
    }
}
