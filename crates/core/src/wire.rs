//! `serde` implementations for the core types crossing the service/API
//! boundary.
//!
//! The service layer accepts tasks and returns selections over the wire;
//! bench tooling persists solver reports. Both need
//! [`Selection`], [`SolverStats`], the solver configurations and
//! [`CrowdModel`] to round-trip through JSON. The implementations are
//! hand-written against the vendored `serde` (see `crates/shims/serde`);
//! moving to crates.io serde later replaces them with derives.
//!
//! Encoding choices:
//! * structs become objects with snake_case field names (derive-compatible);
//! * fieldless enums become lowercase kebab-case strings;
//! * [`CrowdModel`] uses an adjacently-tagged object
//!   (`{"model": "altruism"}` / `{"model": "pay-as-you-go", "budget": b}`).

use crate::altr::{AltrConfig, AltrStrategy};
use crate::jer::JerEngine;
use crate::model::CrowdModel;
use crate::paym::PayConfig;
use crate::problem::{Selection, SolverStats};
use serde::{Deserialize, Error, Serialize, Value};

impl Serialize for SolverStats {
    fn to_value(&self) -> Value {
        Value::object([
            ("jer_evaluations", self.jer_evaluations.to_value()),
            ("pruned_by_bound", self.pruned_by_bound.to_value()),
            ("candidates_considered", self.candidates_considered.to_value()),
        ])
    }
}

impl Deserialize for SolverStats {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self {
            jer_evaluations: field(value, "jer_evaluations")?,
            pruned_by_bound: field(value, "pruned_by_bound")?,
            candidates_considered: field(value, "candidates_considered")?,
        })
    }
}

impl Serialize for Selection {
    fn to_value(&self) -> Value {
        Value::object([
            ("members", self.members.to_value()),
            ("jer", self.jer.to_value()),
            ("total_cost", self.total_cost.to_value()),
            ("stats", self.stats.to_value()),
        ])
    }
}

impl Deserialize for Selection {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self {
            members: field(value, "members")?,
            jer: field(value, "jer")?,
            total_cost: field(value, "total_cost")?,
            stats: field(value, "stats")?,
        })
    }
}

impl Serialize for JerEngine {
    fn to_value(&self) -> Value {
        let name = match self {
            JerEngine::Naive => "naive",
            JerEngine::DynamicProgramming => "dynamic-programming",
            JerEngine::TailDp => "tail-dp",
            JerEngine::Convolution => "convolution",
            JerEngine::Auto => "auto",
        };
        name.to_value()
    }
}

impl Deserialize for JerEngine {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_str() {
            Some("naive") => Ok(JerEngine::Naive),
            Some("dynamic-programming") => Ok(JerEngine::DynamicProgramming),
            Some("tail-dp") => Ok(JerEngine::TailDp),
            Some("convolution") => Ok(JerEngine::Convolution),
            Some("auto") => Ok(JerEngine::Auto),
            _ => Err(Error::expected("a JER engine name", value)),
        }
    }
}

impl Serialize for AltrStrategy {
    fn to_value(&self) -> Value {
        match self {
            AltrStrategy::PaperRecompute => "paper-recompute",
            AltrStrategy::Incremental => "incremental",
        }
        .to_value()
    }
}

impl Deserialize for AltrStrategy {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_str() {
            Some("paper-recompute") => Ok(AltrStrategy::PaperRecompute),
            Some("incremental") => Ok(AltrStrategy::Incremental),
            _ => Err(Error::expected("an AltrALG strategy name", value)),
        }
    }
}

impl Serialize for AltrConfig {
    fn to_value(&self) -> Value {
        Value::object([
            ("strategy", self.strategy.to_value()),
            ("use_lower_bound", self.use_lower_bound.to_value()),
            ("engine", self.engine.to_value()),
        ])
    }
}

impl Deserialize for AltrConfig {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self {
            strategy: field(value, "strategy")?,
            use_lower_bound: field(value, "use_lower_bound")?,
            engine: field(value, "engine")?,
        })
    }
}

impl Serialize for PayConfig {
    fn to_value(&self) -> Value {
        Value::object([("strict_improvement", self.strict_improvement.to_value())])
    }
}

impl Deserialize for PayConfig {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self { strict_improvement: field(value, "strict_improvement")? })
    }
}

impl Serialize for CrowdModel {
    fn to_value(&self) -> Value {
        match *self {
            CrowdModel::Altruism => Value::object([("model", "altruism".to_value())]),
            CrowdModel::PayAsYouGo { budget } => Value::object([
                ("model", "pay-as-you-go".to_value()),
                ("budget", budget.to_value()),
            ]),
        }
    }
}

impl Deserialize for CrowdModel {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.get("model").and_then(Value::as_str) {
            Some("altruism") => Ok(CrowdModel::Altruism),
            Some("pay-as-you-go") => {
                let budget: f64 = field(value, "budget")?;
                CrowdModel::pay_as_you_go(budget)
                    .map_err(|e| Error::custom(format!("invalid budget: {e}")))
            }
            _ => Err(Error::expected("a crowd model object", value)),
        }
    }
}

/// Reads a typed object field.
fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    T::from_value(value.get(name).ok_or_else(|| Error::missing_field(name))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::altr::AltrAlg;
    use crate::juror::pool_from_rates;
    use serde::json;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: &T) {
        let text = json::to_string(value);
        let back: T = json::from_str(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(&back, value, "{text}");
    }

    #[test]
    fn selection_round_trips_with_exact_floats() {
        let pool = pool_from_rates(&[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4]).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        round_trip(&sel);
        // Bit-exactness of the JER through the JSON text matters for the
        // service equivalence guarantees.
        let text = json::to_string(&sel);
        let back: Selection = json::from_str(&text).unwrap();
        assert_eq!(back.jer.to_bits(), sel.jer.to_bits());
    }

    #[test]
    fn stats_and_configs_round_trip() {
        round_trip(&SolverStats {
            jer_evaluations: 12,
            pruned_by_bound: 3,
            candidates_considered: 20,
        });
        round_trip(&AltrConfig::default());
        round_trip(&AltrConfig::paper_with_bound());
        round_trip(&PayConfig { strict_improvement: true });
        for engine in [
            JerEngine::Naive,
            JerEngine::DynamicProgramming,
            JerEngine::TailDp,
            JerEngine::Convolution,
            JerEngine::Auto,
        ] {
            round_trip(&engine);
        }
    }

    #[test]
    fn crowd_models_round_trip() {
        round_trip(&CrowdModel::Altruism);
        round_trip(&CrowdModel::PayAsYouGo { budget: 1.25 });
        assert!(
            json::from_str::<CrowdModel>(r#"{"model": "pay-as-you-go", "budget": -1}"#).is_err()
        );
        assert!(json::from_str::<CrowdModel>(r#"{"model": "unknown"}"#).is_err());
    }

    #[test]
    fn unknown_engine_is_rejected() {
        assert!(json::from_str::<JerEngine>("\"quantum\"").is_err());
        assert!(json::from_str::<Selection>("{}").is_err());
    }
}
