//! `serde` implementations for the core types crossing the service/API
//! boundary.
//!
//! The service layer accepts tasks and returns selections over the wire;
//! bench tooling persists solver reports. Both need
//! [`Selection`], [`SolverStats`], the solver configurations and
//! [`CrowdModel`] to round-trip through JSON. The implementations are
//! hand-written against the vendored `serde` (see `crates/shims/serde`);
//! moving to crates.io serde later replaces them with derives.
//!
//! Encoding choices:
//! * structs become objects with snake_case field names (derive-compatible);
//! * fieldless enums become lowercase kebab-case strings;
//! * [`CrowdModel`] uses an adjacently-tagged object
//!   (`{"model": "altruism"}` / `{"model": "pay-as-you-go", "budget": b}`);
//! * [`JuryError`] uses a kind-tagged object
//!   (`{"kind": "no-feasible-jury", "budget": b}`) so clients can switch
//!   on the kind without parsing prose;
//! * HTTP front-ends wrap every response in an [`Envelope`]:
//!   `{"ok": true, "result": …}` on success,
//!   `{"ok": false, "error": {"kind": …, "message": …}}` on failure
//!   (plus `retry_after_ms` on backpressure rejections).

use crate::altr::{AltrConfig, AltrStrategy};
use crate::error::JuryError;
use crate::jer::JerEngine;
use crate::juror::{ErrorRate, Juror};
use crate::model::CrowdModel;
use crate::paym::{PayConfig, Staircase};
use crate::problem::{Selection, SolverStats};
use serde::{Deserialize, Error, Serialize, Value};

impl Serialize for Juror {
    fn to_value(&self) -> Value {
        Value::object([
            ("id", self.id.to_value()),
            ("error_rate", self.epsilon().to_value()),
            ("cost", self.cost.to_value()),
        ])
    }
}

impl Deserialize for Juror {
    /// Re-validates on the way in: wire jurors are untrusted, so the
    /// Definition-4 rate constraint and the finite-cost constraint are
    /// enforced exactly like [`Juror::try_new`].
    fn from_value(value: &Value) -> Result<Self, Error> {
        let id: u32 = field(value, "id")?;
        let rate: f64 = field(value, "error_rate")?;
        let cost: f64 = field(value, "cost")?;
        let rate = ErrorRate::new(rate).map_err(|e| Error::custom(e.to_string()))?;
        Juror::try_new(id, rate, cost).map_err(|e| Error::custom(e.to_string()))
    }
}

impl Serialize for JuryError {
    fn to_value(&self) -> Value {
        let kind = |k: &str| ("kind", k.to_value());
        match *self {
            Self::InvalidErrorRate(v) => {
                Value::object([kind("invalid-error-rate"), ("value", v.to_value())])
            }
            Self::InvalidCost(v) => Value::object([kind("invalid-cost"), ("value", v.to_value())]),
            Self::EvenJurySize(n) => {
                Value::object([kind("even-jury-size"), ("size", n.to_value())])
            }
            Self::EmptyJury => Value::object([kind("empty-jury")]),
            Self::VotingSizeMismatch { expected, actual } => Value::object([
                kind("voting-size-mismatch"),
                ("expected", expected.to_value()),
                ("actual", actual.to_value()),
            ]),
            Self::EmptyPool => Value::object([kind("empty-pool")]),
            Self::NoFeasibleJury { budget } => {
                Value::object([kind("no-feasible-jury"), ("budget", budget.to_value())])
            }
            Self::InvalidBudget(b) => {
                Value::object([kind("invalid-budget"), ("budget", b.to_value())])
            }
            Self::PoolTooLargeForExact { size, limit } => Value::object([
                kind("pool-too-large-for-exact"),
                ("size", size.to_value()),
                ("limit", limit.to_value()),
            ]),
        }
    }
}

impl Deserialize for JuryError {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.get("kind").and_then(Value::as_str) {
            Some("invalid-error-rate") => Ok(Self::InvalidErrorRate(float_field(value, "value")?)),
            Some("invalid-cost") => Ok(Self::InvalidCost(float_field(value, "value")?)),
            Some("even-jury-size") => Ok(Self::EvenJurySize(field(value, "size")?)),
            Some("empty-jury") => Ok(Self::EmptyJury),
            Some("voting-size-mismatch") => Ok(Self::VotingSizeMismatch {
                expected: field(value, "expected")?,
                actual: field(value, "actual")?,
            }),
            Some("empty-pool") => Ok(Self::EmptyPool),
            Some("no-feasible-jury") => {
                Ok(Self::NoFeasibleJury { budget: float_field(value, "budget")? })
            }
            Some("invalid-budget") => Ok(Self::InvalidBudget(float_field(value, "budget")?)),
            Some("pool-too-large-for-exact") => Ok(Self::PoolTooLargeForExact {
                size: field(value, "size")?,
                limit: field(value, "limit")?,
            }),
            _ => Err(Error::expected("a jury error object", value)),
        }
    }
}

/// A structured wire error: a machine-readable kebab-case kind, a human
/// message, and (for backpressure rejections) a retry hint.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Kebab-case error class (e.g. `"unknown-pool"`, `"overloaded"`).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
    /// How long the client should back off before retrying, when the
    /// error is a transient admission-control rejection.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// A plain error with no retry hint.
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> Self {
        Self { kind: kind.into(), message: message.into(), retry_after_ms: None }
    }

    /// A backpressure rejection carrying a retry hint.
    pub fn with_retry_after(mut self, retry_after_ms: u64) -> Self {
        self.retry_after_ms = Some(retry_after_ms);
        self
    }
}

impl Serialize for WireError {
    fn to_value(&self) -> Value {
        let mut fields = vec![("kind", self.kind.to_value()), ("message", self.message.to_value())];
        if let Some(ms) = self.retry_after_ms {
            fields.push(("retry_after_ms", ms.to_value()));
        }
        Value::object(fields)
    }
}

impl Deserialize for WireError {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self {
            kind: field(value, "kind")?,
            message: field(value, "message")?,
            retry_after_ms: match value.get("retry_after_ms") {
                None | Some(Value::Null) => None,
                Some(v) => Some(u64::from_value(v)?),
            },
        })
    }
}

/// The uniform response envelope HTTP front-ends speak: every body is
/// `{"ok": true, "result": …}` or `{"ok": false, "error": …}`, so a
/// client can always parse the body before (or instead of) switching on
/// the HTTP status code.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// Success, carrying the endpoint-specific result value.
    Ok(Value),
    /// Failure, carrying a structured [`WireError`].
    Err(WireError),
}

impl Envelope {
    /// Wraps a successful result.
    pub fn ok<T: Serialize>(result: &T) -> Self {
        Self::Ok(result.to_value())
    }

    /// Wraps an error.
    pub fn err(error: WireError) -> Self {
        Self::Err(error)
    }

    /// Unwraps into a `Result` for client-side consumption.
    pub fn into_result(self) -> Result<Value, WireError> {
        match self {
            Self::Ok(v) => Ok(v),
            Self::Err(e) => Err(e),
        }
    }
}

impl Serialize for Envelope {
    fn to_value(&self) -> Value {
        match self {
            Self::Ok(result) => {
                Value::object([("ok", true.to_value()), ("result", result.clone())])
            }
            Self::Err(error) => {
                Value::object([("ok", false.to_value()), ("error", error.to_value())])
            }
        }
    }
}

impl Deserialize for Envelope {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(Self::Ok(
                value.get("result").ok_or_else(|| Error::missing_field("result"))?.clone(),
            )),
            Some(false) => Ok(Self::Err(field(value, "error")?)),
            None => Err(Error::expected("an envelope with a boolean `ok`", value)),
        }
    }
}

/// Reads an `f64` field, mapping JSON `null` back to NaN (the writer
/// emits `null` for non-finite floats, mirroring serde_json).
fn float_field(value: &Value, name: &str) -> Result<f64, Error> {
    match value.get(name) {
        None => Err(Error::missing_field(name)),
        Some(Value::Null) => Ok(f64::NAN),
        Some(v) => f64::from_value(v),
    }
}

impl Serialize for SolverStats {
    fn to_value(&self) -> Value {
        Value::object([
            ("jer_evaluations", self.jer_evaluations.to_value()),
            ("pruned_by_bound", self.pruned_by_bound.to_value()),
            ("candidates_considered", self.candidates_considered.to_value()),
        ])
    }
}

impl Deserialize for SolverStats {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self {
            jer_evaluations: field(value, "jer_evaluations")?,
            pruned_by_bound: field(value, "pruned_by_bound")?,
            candidates_considered: field(value, "candidates_considered")?,
        })
    }
}

impl Serialize for Selection {
    fn to_value(&self) -> Value {
        Value::object([
            ("members", self.members.to_value()),
            ("jer", self.jer.to_value()),
            ("total_cost", self.total_cost.to_value()),
            ("stats", self.stats.to_value()),
        ])
    }
}

impl Deserialize for Selection {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self {
            members: field(value, "members")?,
            jer: field(value, "jer")?,
            total_cost: field(value, "total_cost")?,
            stats: field(value, "stats")?,
        })
    }
}

impl Serialize for JerEngine {
    fn to_value(&self) -> Value {
        let name = match self {
            JerEngine::Naive => "naive",
            JerEngine::DynamicProgramming => "dynamic-programming",
            JerEngine::TailDp => "tail-dp",
            JerEngine::Convolution => "convolution",
            JerEngine::Auto => "auto",
        };
        name.to_value()
    }
}

impl Deserialize for JerEngine {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_str() {
            Some("naive") => Ok(JerEngine::Naive),
            Some("dynamic-programming") => Ok(JerEngine::DynamicProgramming),
            Some("tail-dp") => Ok(JerEngine::TailDp),
            Some("convolution") => Ok(JerEngine::Convolution),
            Some("auto") => Ok(JerEngine::Auto),
            _ => Err(Error::expected("a JER engine name", value)),
        }
    }
}

impl Serialize for AltrStrategy {
    fn to_value(&self) -> Value {
        match self {
            AltrStrategy::PaperRecompute => "paper-recompute",
            AltrStrategy::Incremental => "incremental",
        }
        .to_value()
    }
}

impl Deserialize for AltrStrategy {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_str() {
            Some("paper-recompute") => Ok(AltrStrategy::PaperRecompute),
            Some("incremental") => Ok(AltrStrategy::Incremental),
            _ => Err(Error::expected("an AltrALG strategy name", value)),
        }
    }
}

impl Serialize for AltrConfig {
    fn to_value(&self) -> Value {
        Value::object([
            ("strategy", self.strategy.to_value()),
            ("use_lower_bound", self.use_lower_bound.to_value()),
            ("engine", self.engine.to_value()),
        ])
    }
}

impl Deserialize for AltrConfig {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self {
            strategy: field(value, "strategy")?,
            use_lower_bound: field(value, "use_lower_bound")?,
            engine: field(value, "engine")?,
        })
    }
}

impl Serialize for PayConfig {
    fn to_value(&self) -> Value {
        Value::object([("strict_improvement", self.strict_improvement.to_value())])
    }
}

impl Deserialize for PayConfig {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self { strict_improvement: field(value, "strict_improvement")? })
    }
}

impl Serialize for CrowdModel {
    fn to_value(&self) -> Value {
        match *self {
            CrowdModel::Altruism => Value::object([("model", "altruism".to_value())]),
            CrowdModel::PayAsYouGo { budget } => Value::object([
                ("model", "pay-as-you-go".to_value()),
                ("budget", budget.to_value()),
            ]),
        }
    }
}

impl Deserialize for CrowdModel {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.get("model").and_then(Value::as_str) {
            Some("altruism") => Ok(CrowdModel::Altruism),
            Some("pay-as-you-go") => {
                let budget: f64 = field(value, "budget")?;
                CrowdModel::pay_as_you_go(budget)
                    .map_err(|e| Error::custom(format!("invalid budget: {e}")))
            }
            _ => Err(Error::expected("a crowd model object", value)),
        }
    }
}

impl Serialize for Staircase {
    /// Steps as `{"lo", "hi", "selection"}` objects ascending in budget.
    /// The topmost window's `hi` is `+∞`, which JSON numbers cannot carry
    /// ([the writer emits `null` for non-finite floats]), so infinite
    /// bounds are tagged as the string `"inf"` instead.
    fn to_value(&self) -> Value {
        let steps: Vec<Value> = self
            .steps_raw()
            .map(|(lo, hi, selection)| {
                Value::object([
                    ("lo", lo.to_value()),
                    ("hi", if hi.is_finite() { hi.to_value() } else { "inf".to_value() }),
                    ("selection", selection.map_or(Value::Null, Serialize::to_value)),
                ])
            })
            .collect();
        Value::object([("steps", Value::Array(steps))])
    }
}

impl Deserialize for Staircase {
    /// Re-validates the staircase invariants on the way in (sorted,
    /// disjoint, non-negative finite `lo`, `lo < hi`): wire steps are
    /// untrusted and a malformed staircase would silently replay wrong
    /// selections.
    fn from_value(value: &Value) -> Result<Self, Error> {
        let Some(Value::Array(steps)) = value.get("steps") else {
            return Err(Error::expected("a staircase with a `steps` array", value));
        };
        let mut raw = Vec::with_capacity(steps.len());
        for step in steps {
            let lo: f64 = field(step, "lo")?;
            let hi = match step.get("hi") {
                Some(Value::String(s)) if s == "inf" => f64::INFINITY,
                Some(v) => f64::from_value(v)?,
                None => return Err(Error::missing_field("hi")),
            };
            let selection = match step.get("selection") {
                None | Some(Value::Null) => None,
                Some(v) => Some(Selection::from_value(v)?),
            };
            raw.push((lo, hi, selection));
        }
        Staircase::from_steps_raw(raw)
            .ok_or_else(|| Error::custom("staircase steps violate the sorted-disjoint invariant"))
    }
}

/// Reads a typed object field.
fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    T::from_value(value.get(name).ok_or_else(|| Error::missing_field(name))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::altr::AltrAlg;
    use crate::juror::pool_from_rates;
    use serde::json;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: &T) {
        let text = json::to_string(value);
        let back: T = json::from_str(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(&back, value, "{text}");
    }

    #[test]
    fn selection_round_trips_with_exact_floats() {
        let pool = pool_from_rates(&[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4]).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        round_trip(&sel);
        // Bit-exactness of the JER through the JSON text matters for the
        // service equivalence guarantees.
        let text = json::to_string(&sel);
        let back: Selection = json::from_str(&text).unwrap();
        assert_eq!(back.jer.to_bits(), sel.jer.to_bits());
    }

    #[test]
    fn stats_and_configs_round_trip() {
        round_trip(&SolverStats {
            jer_evaluations: 12,
            pruned_by_bound: 3,
            candidates_considered: 20,
        });
        round_trip(&AltrConfig::default());
        round_trip(&AltrConfig::paper_with_bound());
        round_trip(&PayConfig { strict_improvement: true });
        for engine in [
            JerEngine::Naive,
            JerEngine::DynamicProgramming,
            JerEngine::TailDp,
            JerEngine::Convolution,
            JerEngine::Auto,
        ] {
            round_trip(&engine);
        }
    }

    #[test]
    fn crowd_models_round_trip() {
        round_trip(&CrowdModel::Altruism);
        round_trip(&CrowdModel::PayAsYouGo { budget: 1.25 });
        assert!(
            json::from_str::<CrowdModel>(r#"{"model": "pay-as-you-go", "budget": -1}"#).is_err()
        );
        assert!(json::from_str::<CrowdModel>(r#"{"model": "unknown"}"#).is_err());
    }

    #[test]
    fn unknown_engine_is_rejected() {
        assert!(json::from_str::<JerEngine>("\"quantum\"").is_err());
        assert!(json::from_str::<Selection>("{}").is_err());
    }

    #[test]
    fn jurors_round_trip_and_revalidate() {
        round_trip(&Juror::new(7, ErrorRate::new(0.25).unwrap(), 1.5));
        round_trip(&Juror::free(0, ErrorRate::new(0.999).unwrap()));
        // Wire jurors are untrusted: invalid rates and costs are refused.
        assert!(json::from_str::<Juror>(r#"{"id": 1, "error_rate": 1.2, "cost": 0}"#).is_err());
        assert!(json::from_str::<Juror>(r#"{"id": 1, "error_rate": 0.2, "cost": -3}"#).is_err());
        assert!(json::from_str::<Juror>(r#"{"id": 1, "error_rate": 0.2}"#).is_err());
    }

    #[test]
    fn jury_errors_round_trip() {
        for err in [
            JuryError::InvalidErrorRate(1.5),
            JuryError::InvalidCost(-1.0),
            JuryError::EvenJurySize(4),
            JuryError::EmptyJury,
            JuryError::VotingSizeMismatch { expected: 3, actual: 2 },
            JuryError::EmptyPool,
            JuryError::NoFeasibleJury { budget: 0.125 },
            JuryError::InvalidBudget(-2.0),
            JuryError::PoolTooLargeForExact { size: 40, limit: 26 },
        ] {
            round_trip(&err);
        }
        // Non-finite payloads survive as NaN (JSON null), not as a parse
        // failure — the service really does produce InvalidBudget(NaN).
        let text = json::to_string(&JuryError::InvalidBudget(f64::NAN));
        match json::from_str::<JuryError>(&text).unwrap() {
            JuryError::InvalidBudget(b) => assert!(b.is_nan()),
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(json::from_str::<JuryError>(r#"{"kind": "novel"}"#).is_err());
    }

    #[test]
    fn envelopes_round_trip() {
        round_trip(&Envelope::ok(&CrowdModel::PayAsYouGo { budget: 2.0 }));
        round_trip(&Envelope::err(WireError::new("unknown-pool", "unknown pool#9")));
        round_trip(&Envelope::err(
            WireError::new("overloaded", "tenant queue full").with_retry_after(50),
        ));
        let ok = Envelope::ok(&3usize).into_result().unwrap();
        assert_eq!(ok.as_u64(), Some(3));
        let err =
            Envelope::err(WireError::new("bad-request", "no body")).into_result().unwrap_err();
        assert_eq!(err.kind, "bad-request");
        assert!(json::from_str::<Envelope>(r#"{"result": 3}"#).is_err());
    }
}
