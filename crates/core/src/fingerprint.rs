//! Content fingerprints for juror pools — the keys of a serving layer's
//! warm-artifact store.
//!
//! At micro-blog scale the same crowd backs many logical pools
//! (per-tenant, per-topic, per-region registries over one juror
//! population), so a serving layer wants to recognise that two pools
//! have the *same solver-relevant content* and build their warm
//! artifacts — sorted orders, pmf ladders, JER profiles, solved
//! selections — once. [`PoolFingerprint`] is the recogniser: a
//! **commutative multiset hash** over each juror's solver-relevant
//! content, updateable in `O(1)` per mutation.
//!
//! # Canonicalisation
//!
//! A juror enters the hash as the pair `(ε.to_bits(), cost.to_bits())` —
//! the only two fields any solver reads (`id` is payload, never a sort
//! key). Hashing raw IEEE-754 bits makes the fingerprint exactly as
//! strict as the solvers' `total_cmp` orders: `0.5` and `0.5 + 1e-12`
//! are different content, `-0.0` and `0.0` are different content, and
//! no NaN canonicalisation is needed ([`crate::juror::ErrorRate`]
//! validates ε; a NaN cost would already poison the greedy order).
//!
//! # Commutativity and incrementality
//!
//! Each element is expanded into two independent 64-bit lanes by a
//! SplitMix64-style finaliser and the lanes are *summed* (wrapping).
//! Addition is commutative and invertible, so:
//!
//! * permuting a pool never changes its fingerprint (equal multisets ⇒
//!   equal fingerprints, the property a content-addressed store keys
//!   on);
//! * a mutation updates the fingerprint by one subtraction and/or one
//!   addition — no rescan of the pool, ever.
//!
//! Two lanes plus the explicit length give 128+ bits of accumulator
//! state. A collision would merely make a store *probe* an entry whose
//! verification then fails — consumers must verify candidate matches by
//! content comparison (the store does), so collisions can only cost a
//! missed share, never a wrong answer.

use crate::juror::Juror;
use jury_numeric::hash::splitmix64;

/// The value a pool's content hashes to: the interning key of a
/// warm-artifact store. Derives `Eq + Hash` so it can key a map
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FingerprintKey {
    /// Two independent commutative accumulator lanes.
    pub lanes: [u64; 2],
    /// Number of jurors hashed in (disambiguates e.g. the empty pool
    /// from lane-cancelling multisets).
    pub len: u64,
}

/// A running multiset hash of a pool's solver-relevant juror content.
/// Maintained incrementally alongside the pool: one
/// [`insert`](PoolFingerprint::insert) /
/// [`remove`](PoolFingerprint::remove) /
/// [`replace`](PoolFingerprint::replace) per mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolFingerprint {
    lanes: [u64; 2],
    len: u64,
}

/// Expands one juror's solver-relevant content into the two lane
/// contributions. Each lane consumes `(ε bits, cost bits)` through its
/// own seeded mixing chain — not a shared intermediate — so a collision
/// in one lane does not imply a collision in the other and the
/// accumulator keeps its full two-lane strength.
#[inline]
fn element_lanes(eps_bits: u64, cost_bits: u64) -> [u64; 2] {
    let lane = |seed: u64| {
        splitmix64(
            splitmix64(eps_bits ^ seed).wrapping_add(splitmix64(cost_bits.rotate_left(17) ^ seed)),
        )
    };
    [lane(0xa076_1d64_78bd_642f), lane(0xe703_7ed1_a0b4_28db)]
}

/// The `(ε bits, cost bits)` pair that is a juror's solver-relevant
/// content — everything the ε order, greedy order and pmf artifacts
/// depend on. Exposed so stores can verify candidate matches by content
/// comparison under the exact canonicalisation the fingerprint uses.
#[inline]
pub fn juror_content(juror: &Juror) -> (u64, u64) {
    (juror.epsilon().to_bits(), juror.cost.to_bits())
}

impl PoolFingerprint {
    /// The fingerprint of the empty pool.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Fingerprints a whole pool in one pass (`O(n)`); mutations keep it
    /// current in `O(1)` from there.
    pub fn from_jurors(jurors: &[Juror]) -> Self {
        let mut fp = Self::empty();
        for juror in jurors {
            fp.insert(juror);
        }
        fp
    }

    /// Folds one juror into the multiset.
    pub fn insert(&mut self, juror: &Juror) {
        let (e, c) = juror_content(juror);
        let lanes = element_lanes(e, c);
        self.lanes[0] = self.lanes[0].wrapping_add(lanes[0]);
        self.lanes[1] = self.lanes[1].wrapping_add(lanes[1]);
        self.len += 1;
    }

    /// Removes one juror from the multiset (the inverse of
    /// [`insert`](PoolFingerprint::insert); the caller guarantees the
    /// juror's content is present).
    pub fn remove(&mut self, juror: &Juror) {
        let (e, c) = juror_content(juror);
        let lanes = element_lanes(e, c);
        self.lanes[0] = self.lanes[0].wrapping_sub(lanes[0]);
        self.lanes[1] = self.lanes[1].wrapping_sub(lanes[1]);
        self.len -= 1;
    }

    /// Replaces one juror's content with another — an update in one
    /// subtraction + one addition.
    pub fn replace(&mut self, old: &Juror, new: &Juror) {
        self.remove(old);
        self.insert(new);
    }

    /// The current interning key.
    pub fn key(&self) -> FingerprintKey {
        FingerprintKey { lanes: self.lanes, len: self.len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::ErrorRate;

    fn juror(id: u32, eps: f64, cost: f64) -> Juror {
        Juror::new(id, ErrorRate::new(eps).unwrap(), cost)
    }

    #[test]
    fn permutation_invariant() {
        let a = vec![juror(0, 0.1, 0.2), juror(1, 0.3, 0.4), juror(2, 0.1, 0.9)];
        let mut b = a.clone();
        b.rotate_left(1);
        b.swap(0, 1);
        assert_eq!(PoolFingerprint::from_jurors(&a).key(), PoolFingerprint::from_jurors(&b).key());
    }

    #[test]
    fn ids_are_not_content() {
        let a = vec![juror(7, 0.25, 0.5)];
        let b = vec![juror(99, 0.25, 0.5)];
        assert_eq!(PoolFingerprint::from_jurors(&a).key(), PoolFingerprint::from_jurors(&b).key());
    }

    #[test]
    fn incremental_matches_batch() {
        let mut pool = vec![juror(0, 0.1, 0.0), juror(1, 0.5, 1.0)];
        let mut fp = PoolFingerprint::from_jurors(&pool);

        let extra = juror(2, 0.2, 0.3);
        pool.push(extra);
        fp.insert(&extra);
        assert_eq!(fp.key(), PoolFingerprint::from_jurors(&pool).key());

        let replacement = juror(2, 0.21, 0.3);
        fp.replace(&pool[2], &replacement);
        pool[2] = replacement;
        assert_eq!(fp.key(), PoolFingerprint::from_jurors(&pool).key());

        let removed = pool.remove(0);
        fp.remove(&removed);
        assert_eq!(fp.key(), PoolFingerprint::from_jurors(&pool).key());
    }

    #[test]
    fn mutation_round_trip_restores_the_key() {
        let pool = vec![juror(0, 0.1, 0.2), juror(1, 0.4, 0.1)];
        let mut fp = PoolFingerprint::from_jurors(&pool);
        let before = fp.key();
        let perturbed = juror(0, 0.1 + 1e-12, 0.2);
        fp.replace(&pool[0], &perturbed);
        assert_ne!(fp.key(), before, "an ulp-level ε change is new content");
        fp.replace(&perturbed, &pool[0]);
        assert_eq!(fp.key(), before, "mutating back restores the key exactly");
    }

    #[test]
    fn adversarial_rates_stay_distinct() {
        // The deconvolution proptests' adversarial ε values must all be
        // distinguishable content, including ½ ± 1e-12 and the
        // near-boundary rates ([`ErrorRate`] keeps ε strictly inside
        // (0, 1), so the 0/1 extremes appear as 1e-12 and 1 − 1e-12).
        let rates = [1e-12, 1.0 - 1e-12, 0.5, 0.5 + 1e-12, 0.5 - 1e-12, 0.25];
        let keys: Vec<FingerprintKey> = rates
            .iter()
            .map(|&e| PoolFingerprint::from_jurors(&[juror(0, e, 0.1)]).key())
            .collect();
        for i in 0..keys.len() {
            for j in 0..i {
                assert_ne!(keys[i], keys[j], "rates {} vs {}", rates[i], rates[j]);
            }
        }
    }

    #[test]
    fn length_disambiguates() {
        assert_ne!(
            PoolFingerprint::empty().key(),
            FingerprintKey { lanes: [0, 0], len: 1 },
            "empty pool key carries its length"
        );
        let one = PoolFingerprint::from_jurors(&[juror(0, 0.2, 0.1)]);
        let two = PoolFingerprint::from_jurors(&[juror(0, 0.2, 0.1), juror(1, 0.2, 0.1)]);
        assert_ne!(one.key(), two.key());
    }
}
