//! Votings and voting schemes.
//!
//! Definition 2 of the paper: a *voting* is a valid instance of a jury —
//! one binary ballot per juror. Definition 3: *majority voting* outputs
//! the opinion supported by more than half of the (odd-sized) jury.
//!
//! Beyond the paper's plain MV we provide the classical log-odds
//! *weighted* majority vote as an extension: each ballot is weighted by
//! `ln((1-ε)/ε)`, which is the Bayes-optimal aggregation when individual
//! error rates are known. The `weighted_voting` bench compares both.

use crate::error::JuryError;
use crate::jury::Jury;

/// Outcome of aggregating a voting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The jury decided "yes"/true/1.
    Yes,
    /// The jury decided "no"/false/0.
    No,
}

impl Decision {
    /// Decision as the paper's binary value.
    #[inline]
    pub fn as_bool(self) -> bool {
        matches!(self, Decision::Yes)
    }

    /// From a binary value.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Decision::Yes
        } else {
            Decision::No
        }
    }
}

/// A voting: one boolean ballot per juror, in jury member order
/// (Definition 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Voting {
    ballots: Vec<bool>,
}

impl Voting {
    /// Wraps ballots for a jury of matching (odd) size.
    ///
    /// # Errors
    /// [`JuryError::EmptyJury`] / [`JuryError::EvenJurySize`] mirror the
    /// jury invariants so a `Voting` is always aggregatable.
    pub fn new(ballots: Vec<bool>) -> Result<Self, JuryError> {
        if ballots.is_empty() {
            return Err(JuryError::EmptyJury);
        }
        if ballots.len().is_multiple_of(2) {
            return Err(JuryError::EvenJurySize(ballots.len()));
        }
        Ok(Self { ballots })
    }

    /// The ballots in member order.
    #[inline]
    pub fn ballots(&self) -> &[bool] {
        &self.ballots
    }

    /// Number of ballots.
    #[inline]
    pub fn len(&self) -> usize {
        self.ballots.len()
    }

    /// Always false (a voting cannot be empty) — for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ballots.is_empty()
    }

    /// Number of "yes" ballots.
    pub fn yes_count(&self) -> usize {
        self.ballots.iter().filter(|&&b| b).count()
    }
}

/// Majority voting (Definition 3): `Yes` iff yes-ballots reach
/// `(n+1)/2`.
pub fn majority_vote(voting: &Voting) -> Decision {
    let n = voting.len();
    Decision::from_bool(voting.yes_count() >= n.div_ceil(2))
}

/// Weighted majority voting: ballots weighted by the jurors' log-odds
/// `ln((1-ε)/ε)`; `Yes` iff the signed weight sum is positive (ties —
/// measure-zero with real weights — resolve to `No`, matching plain MV's
/// conservative `0` branch).
///
/// # Errors
/// [`JuryError::VotingSizeMismatch`] if ballot count differs from the
/// jury size.
pub fn weighted_majority_vote(jury: &Jury, voting: &Voting) -> Result<Decision, JuryError> {
    if jury.size() != voting.len() {
        return Err(JuryError::VotingSizeMismatch { expected: jury.size(), actual: voting.len() });
    }
    let score: f64 = jury
        .members()
        .iter()
        .zip(voting.ballots())
        .map(|(j, &b)| {
            let w = j.error_rate.log_odds();
            if b {
                w
            } else {
                -w
            }
        })
        .sum();
    Ok(Decision::from_bool(score > 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::pool_from_rates;

    fn voting(bits: &[bool]) -> Voting {
        Voting::new(bits.to_vec()).unwrap()
    }

    #[test]
    fn decision_conversions() {
        assert!(Decision::Yes.as_bool());
        assert!(!Decision::No.as_bool());
        assert_eq!(Decision::from_bool(true), Decision::Yes);
        assert_eq!(Decision::from_bool(false), Decision::No);
    }

    #[test]
    fn voting_validation() {
        assert_eq!(Voting::new(vec![]), Err(JuryError::EmptyJury));
        assert_eq!(Voting::new(vec![true, false]), Err(JuryError::EvenJurySize(2)));
        assert!(Voting::new(vec![true]).is_ok());
    }

    #[test]
    fn majority_basic() {
        assert_eq!(majority_vote(&voting(&[true, true, false])), Decision::Yes);
        assert_eq!(majority_vote(&voting(&[false, false, true])), Decision::No);
        assert_eq!(majority_vote(&voting(&[true])), Decision::Yes);
        assert_eq!(majority_vote(&voting(&[false])), Decision::No);
    }

    #[test]
    fn majority_threshold_exact() {
        // 5 jurors: 3 yes is a majority, 2 is not.
        assert_eq!(majority_vote(&voting(&[true, true, true, false, false])), Decision::Yes);
        assert_eq!(majority_vote(&voting(&[true, true, false, false, false])), Decision::No);
    }

    #[test]
    fn yes_count() {
        assert_eq!(voting(&[true, false, true]).yes_count(), 2);
    }

    #[test]
    fn weighted_vote_follows_reliable_minority() {
        // One excellent juror (ε=0.01) voting Yes outweighs two mediocre
        // (ε=0.45) voting No: log-odds 4.6 vs 2·0.2.
        let jury = Jury::new(pool_from_rates(&[0.01, 0.45, 0.45]).unwrap()).unwrap();
        let v = voting(&[true, false, false]);
        assert_eq!(weighted_majority_vote(&jury, &v).unwrap(), Decision::Yes);
        // Plain MV disagrees — that's the point of the extension.
        assert_eq!(majority_vote(&v), Decision::No);
    }

    #[test]
    fn weighted_vote_equals_plain_for_uniform_rates() {
        let jury = Jury::new(pool_from_rates(&[0.3, 0.3, 0.3, 0.3, 0.3]).unwrap()).unwrap();
        for pattern in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| pattern >> i & 1 == 1).collect();
            let v = voting(&bits);
            assert_eq!(weighted_majority_vote(&jury, &v).unwrap(), majority_vote(&v));
        }
    }

    #[test]
    fn weighted_vote_checks_sizes() {
        let jury = Jury::new(pool_from_rates(&[0.1, 0.2, 0.3]).unwrap()).unwrap();
        let v = voting(&[true]);
        assert_eq!(
            weighted_majority_vote(&jury, &v),
            Err(JuryError::VotingSizeMismatch { expected: 3, actual: 1 })
        );
    }

    #[test]
    fn adversarial_juror_counts_against_their_ballot() {
        // ε = 0.9: their "yes" is evidence for No.
        let jury = Jury::new(pool_from_rates(&[0.9, 0.4, 0.4]).unwrap()).unwrap();
        let v = voting(&[true, false, false]);
        assert_eq!(weighted_majority_vote(&jury, &v).unwrap(), Decision::No);
        let v2 = voting(&[false, true, true]);
        assert_eq!(weighted_majority_vote(&jury, &v2).unwrap(), Decision::Yes);
    }
}
