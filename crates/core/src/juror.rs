//! Juror domain types.
//!
//! Definition 4 of the paper requires individual error rates to lie
//! *strictly* inside `(0, 1)` — a juror who is always right (or always
//! wrong) trivialises selection. [`ErrorRate`] enforces that invariant at
//! construction so every downstream algorithm can assume it. [`Juror`]
//! couples an id with an error rate and a PayM payment requirement.

use crate::error::JuryError;

/// Margin used by [`ErrorRate::clamped`] to pull values off the endpoints
/// of the unit interval. Normalised ranking scores (§4.1.3) can hit the
/// endpoints exactly; the clamp keeps them valid Definition-4 rates.
pub const ERROR_RATE_MARGIN: f64 = 1e-9;

/// An individual error rate `ε ∈ (0, 1)` (Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ErrorRate(f64);

impl ErrorRate {
    /// Validates and wraps a raw probability.
    pub fn new(value: f64) -> Result<Self, JuryError> {
        if value.is_finite() && value > 0.0 && value < 1.0 {
            Ok(Self(value))
        } else {
            Err(JuryError::InvalidErrorRate(value))
        }
    }

    /// Clamps an arbitrary finite value into
    /// `[ERROR_RATE_MARGIN, 1 - ERROR_RATE_MARGIN]` and wraps it. Used for
    /// estimated rates that may touch 0 or 1 after normalisation.
    ///
    /// # Panics
    /// Panics if `value` is NaN — an estimated score that is not a number
    /// is a bug upstream, not a boundary case.
    pub fn clamped(value: f64) -> Self {
        assert!(!value.is_nan(), "error rate must not be NaN");
        Self(value.clamp(ERROR_RATE_MARGIN, 1.0 - ERROR_RATE_MARGIN))
    }

    /// The raw probability.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The complement `1 - ε` (probability of a correct vote).
    #[inline]
    pub fn reliability(self) -> f64 {
        1.0 - self.0
    }

    /// Log-odds of a *correct* vote, `ln((1-ε)/ε)` — the optimal weight
    /// for weighted majority voting.
    #[inline]
    pub fn log_odds(self) -> f64 {
        (self.reliability() / self.0).ln()
    }
}

impl TryFrom<f64> for ErrorRate {
    type Error = JuryError;
    fn try_from(value: f64) -> Result<Self, JuryError> {
        Self::new(value)
    }
}

impl From<ErrorRate> for f64 {
    fn from(e: ErrorRate) -> f64 {
        e.get()
    }
}

/// A candidate juror: an id into the pool, an individual error rate and a
/// PayM payment requirement (`0` under AltrM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Juror {
    /// Stable identifier (index into the candidate pool or interned user
    /// id from the retweet graph).
    pub id: u32,
    /// Probability of voting against the ground truth (Definition 4).
    pub error_rate: ErrorRate,
    /// Payment requirement `r_i ≥ 0` (Definition 8). Ignored by AltrM.
    pub cost: f64,
}

impl Juror {
    /// Creates a juror.
    ///
    /// # Panics
    /// Panics if `cost` is negative or not finite; use
    /// [`Juror::try_new`] for fallible construction.
    pub fn new(id: u32, error_rate: ErrorRate, cost: f64) -> Self {
        Self::try_new(id, error_rate, cost).expect("valid juror cost")
    }

    /// Fallible constructor validating the cost.
    pub fn try_new(id: u32, error_rate: ErrorRate, cost: f64) -> Result<Self, JuryError> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(JuryError::InvalidCost(cost));
        }
        Ok(Self { id, error_rate, cost })
    }

    /// A free juror (AltrM).
    pub fn free(id: u32, error_rate: ErrorRate) -> Self {
        Self { id, error_rate, cost: 0.0 }
    }

    /// The raw error-rate value (shorthand for `error_rate.get()`).
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.error_rate.get()
    }

    /// The paper's PayALG sort key: `ε_i · r_i`.
    #[inline]
    pub fn greedy_key(&self) -> f64 {
        self.epsilon() * self.cost
    }
}

/// Builds a free-juror pool from raw error rates; ids are positional.
///
/// Fails on the first invalid rate.
pub fn pool_from_rates(rates: &[f64]) -> Result<Vec<Juror>, JuryError> {
    rates.iter().enumerate().map(|(i, &e)| Ok(Juror::free(i as u32, ErrorRate::new(e)?))).collect()
}

/// Builds a paid-juror pool from `(error_rate, cost)` pairs; ids are
/// positional.
pub fn pool_from_rates_and_costs(pairs: &[(f64, f64)]) -> Result<Vec<Juror>, JuryError> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(e, c))| Juror::try_new(i as u32, ErrorRate::new(e)?, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_open_interval() {
        assert!(ErrorRate::new(0.5).is_ok());
        assert!(ErrorRate::new(1e-12).is_ok());
        assert!(ErrorRate::new(1.0 - 1e-12).is_ok());
    }

    #[test]
    fn rejects_endpoints_and_garbage() {
        for bad in [0.0, 1.0, -0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(ErrorRate::new(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn clamped_pulls_endpoints_in() {
        assert_eq!(ErrorRate::clamped(0.0).get(), ERROR_RATE_MARGIN);
        assert_eq!(ErrorRate::clamped(1.0).get(), 1.0 - ERROR_RATE_MARGIN);
        assert_eq!(ErrorRate::clamped(-5.0).get(), ERROR_RATE_MARGIN);
        assert_eq!(ErrorRate::clamped(0.3).get(), 0.3);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamped_rejects_nan() {
        let _ = ErrorRate::clamped(f64::NAN);
    }

    #[test]
    fn reliability_and_log_odds() {
        let e = ErrorRate::new(0.2).unwrap();
        assert!((e.reliability() - 0.8).abs() < 1e-15);
        assert!((e.log_odds() - (0.8f64 / 0.2).ln()).abs() < 1e-15);
        // ε = 0.5 carries no information: log-odds zero.
        assert!(ErrorRate::new(0.5).unwrap().log_odds().abs() < 1e-15);
        // ε > 0.5 has negative weight (an adversarial signal).
        assert!(ErrorRate::new(0.9).unwrap().log_odds() < 0.0);
    }

    #[test]
    fn conversions() {
        let e: ErrorRate = 0.25f64.try_into().unwrap();
        let raw: f64 = e.into();
        assert_eq!(raw, 0.25);
        assert!(ErrorRate::try_from(2.0).is_err());
    }

    #[test]
    fn juror_construction() {
        let j = Juror::new(7, ErrorRate::new(0.3).unwrap(), 0.4);
        assert_eq!(j.id, 7);
        assert_eq!(j.epsilon(), 0.3);
        assert!((j.greedy_key() - 0.12).abs() < 1e-15);
        let free = Juror::free(1, ErrorRate::new(0.1).unwrap());
        assert_eq!(free.cost, 0.0);
    }

    #[test]
    fn juror_rejects_bad_cost() {
        let e = ErrorRate::new(0.3).unwrap();
        assert_eq!(Juror::try_new(0, e, -1.0), Err(JuryError::InvalidCost(-1.0)));
        assert!(Juror::try_new(0, e, f64::INFINITY).is_err());
        assert!(Juror::try_new(0, e, 0.0).is_ok());
    }

    #[test]
    fn pool_builders() {
        let pool = pool_from_rates(&[0.1, 0.2]).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool[1].id, 1);
        assert!(pool_from_rates(&[0.1, 1.2]).is_err());

        let paid = pool_from_rates_and_costs(&[(0.1, 0.5), (0.2, 0.0)]).unwrap();
        assert_eq!(paid[0].cost, 0.5);
        assert!(pool_from_rates_and_costs(&[(0.1, -0.5)]).is_err());
    }
}
