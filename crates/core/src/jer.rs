//! Jury Error Rate computation (Definition 6, §3.1).
//!
//! `JER(J_n) = Pr(C ≥ (n+1)/2)` where `C` is the number of jurors voting
//! incorrectly. The engines mirror the paper's §3.1:
//!
//! | Engine | Paper reference | Complexity |
//! |---|---|---|
//! | [`JerEngine::Naive`] | §2.1.2 enumeration | `O(2^n)` |
//! | [`JerEngine::DynamicProgramming`] | Lemma 1 / Algorithm 1 | `O(n²)` time, `O(n)` space |
//! | [`JerEngine::TailDp`] | Algorithm 1, literal two-vector form | `O(n²)` time, `O(n)` space |
//! | [`JerEngine::Convolution`] | Algorithm 2 (CBA) | `O(n log n)` |
//! | [`JerEngine::Auto`] | — | picks DP below ~64 jurors, CBA above |
//!
//! `DynamicProgramming` materialises the full pmf (useful when the caller
//! also wants the distribution); `TailDp` computes only the tail, exactly
//! as Algorithm 1 prints it.
//!
//! The Lemma-2 Paley–Zygmund lower bound is re-exported as
//! [`jer_lower_bound`] with the majority threshold pre-applied.

use jury_numeric::bounds::{paley_zygmund_gamma, paley_zygmund_lower_bound, TailBound};
use jury_numeric::poibin::{tail_probability_dp_with, PoiBin, TailScratch, CBA_BASE_CASE};

/// Reusable buffers for [`JerEngine::jer_with`] /
/// [`JerEngine::tail_with`]: a pmf for the DP engines and the rolling
/// vectors of Algorithm 1. One scratch per worker thread is the intended
/// usage; results are bit-identical to the allocating entry points.
#[derive(Debug, Clone, Default)]
pub struct JerScratch {
    pmf: PoiBin,
    tail: TailScratch,
}

impl JerScratch {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self { pmf: PoiBin::empty(), tail: TailScratch::new() }
    }
}

/// Jury size at which [`JerEngine::Auto`] switches from the quadratic DP
/// to CBA. Below this the DP's tight inner loop wins; the `jer_engines`
/// criterion bench regenerates the crossover.
pub const AUTO_CBA_THRESHOLD: usize = 64;

/// Strategy for computing JER from individual error rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JerEngine {
    /// Exponential enumeration of all minority sets (validation only;
    /// panics above 25 jurors).
    Naive,
    /// Sequential pmf dynamic programming (`O(n²)`).
    DynamicProgramming,
    /// The paper's Algorithm 1: rolling two-vector tail recurrence
    /// (`O(n²)` time, two `O(n)` vectors, no pmf materialised).
    TailDp,
    /// Algorithm 2 — divide & conquer with FFT convolution
    /// (`O(n log n)`).
    Convolution,
    /// Adaptive default: DP for small juries, CBA for large.
    #[default]
    Auto,
}

impl JerEngine {
    /// Majority threshold for a jury of size `n`: integer `(n+1)/2`.
    ///
    /// The paper only defines JER for odd `n`, where this equals the
    /// strict-majority count. Raw slices of even length are still accepted
    /// (useful mid-scan in solvers); there the value is `n/2`, the count
    /// at which a voting can no longer reach a correct strict majority.
    #[inline]
    pub fn majority_threshold(n: usize) -> usize {
        n.div_ceil(2)
    }

    /// Computes `JER = Pr(C ≥ (n+1)/2)` for the given error rates.
    ///
    /// # Panics
    /// Panics if any rate is outside `[0, 1]`, or (for `Naive`) if there
    /// are more than 25 jurors.
    pub fn jer(self, eps: &[f64]) -> f64 {
        self.tail(eps, Self::majority_threshold(eps.len()))
    }

    /// Computes the general tail `Pr(C ≥ threshold)` — JER is the
    /// `threshold = (n+1)/2` case.
    pub fn tail(self, eps: &[f64], threshold: usize) -> f64 {
        self.tail_with(eps, threshold, &mut JerScratch::new())
    }

    /// The workspace form of [`JerEngine::jer`]: bit-identical results,
    /// with the DP pmf / rolling tail vectors reused from `scratch` so a
    /// solver scan or a batched service evaluates JERs without heap
    /// allocation (the CBA recursion above [`CBA_BASE_CASE`] jurors still
    /// allocates its merge tree; `Naive` is validation-only).
    pub fn jer_with(self, eps: &[f64], scratch: &mut JerScratch) -> f64 {
        self.tail_with(eps, Self::majority_threshold(eps.len()), scratch)
    }

    /// The workspace form of [`JerEngine::tail`].
    pub fn tail_with(self, eps: &[f64], threshold: usize, scratch: &mut JerScratch) -> f64 {
        match self {
            JerEngine::Naive => PoiBin::from_error_rates_naive(eps).tail(threshold),
            JerEngine::DynamicProgramming => {
                scratch.pmf.assign_error_rates_dp(eps);
                scratch.pmf.tail(threshold)
            }
            JerEngine::TailDp => tail_probability_dp_with(eps, threshold, &mut scratch.tail),
            JerEngine::Convolution => {
                // CBA bottoms out into the sequential DP below its base
                // case, so the short-input result is bit-identical while
                // staying allocation-free.
                if eps.len() <= CBA_BASE_CASE {
                    scratch.pmf.assign_error_rates_dp(eps);
                    scratch.pmf.tail(threshold)
                } else {
                    PoiBin::from_error_rates_cba(eps).tail(threshold)
                }
            }
            JerEngine::Auto => {
                if eps.len() < AUTO_CBA_THRESHOLD {
                    scratch.pmf.assign_error_rates_dp(eps);
                    scratch.pmf.tail(threshold)
                } else {
                    PoiBin::from_error_rates_cba(eps).tail(threshold)
                }
            }
        }
    }

    /// Materialises the carelessness distribution (not available for
    /// `TailDp`, which never forms the pmf — `Auto` is substituted).
    pub fn distribution(self, eps: &[f64]) -> PoiBin {
        match self {
            JerEngine::Naive => PoiBin::from_error_rates_naive(eps),
            JerEngine::DynamicProgramming => PoiBin::from_error_rates_dp(eps),
            JerEngine::Convolution => PoiBin::from_error_rates_cba(eps),
            JerEngine::TailDp | JerEngine::Auto => PoiBin::from_error_rates(eps),
        }
    }
}

/// The Lemma-2 Paley–Zygmund lower bound on JER, with the majority
/// threshold `(n+1)/2` pre-applied. Returns `None` when the bound's
/// precondition `γ = ((n+1)/2)/μ ∈ (0,1)` fails — AltrALG then computes
/// the exact JER, as Algorithm 3 does.
pub fn jer_lower_bound(eps: &[f64]) -> Option<f64> {
    let threshold = JerEngine::majority_threshold(eps.len());
    match paley_zygmund_lower_bound(eps, threshold) {
        TailBound::Value(v) => Some(v),
        TailBound::Inapplicable => None,
    }
}

/// The Lemma-2 γ for a candidate jury: `((n+1)/2) / Σε`. Algorithm 3
/// checks `γ < 1` before attempting the bound.
pub fn jer_gamma(eps: &[f64]) -> f64 {
    paley_zygmund_gamma(eps, JerEngine::majority_threshold(eps.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINES: [JerEngine; 5] = [
        JerEngine::Naive,
        JerEngine::DynamicProgramming,
        JerEngine::TailDp,
        JerEngine::Convolution,
        JerEngine::Auto,
    ];

    #[test]
    fn majority_threshold_matches_paper() {
        assert_eq!(JerEngine::majority_threshold(1), 1);
        assert_eq!(JerEngine::majority_threshold(3), 2);
        assert_eq!(JerEngine::majority_threshold(5), 3);
        assert_eq!(JerEngine::majority_threshold(7), 4);
    }

    #[test]
    fn all_engines_agree_on_motivating_example() {
        let eps = [0.2, 0.3, 0.3];
        for engine in ENGINES {
            assert!((engine.jer(&eps) - 0.174).abs() < 1e-12, "{engine:?} disagreed");
        }
    }

    #[test]
    fn all_engines_agree_on_table2() {
        let cases: [(&[f64], f64); 4] = [
            (&[0.1, 0.2, 0.2], 0.072),
            (&[0.1, 0.2, 0.2, 0.3, 0.3], 0.07036),
            (&[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4], 0.085248),
            (&[0.1, 0.2, 0.2, 0.4, 0.4], 0.10384),
        ];
        for (eps, expected) in cases {
            for engine in ENGINES {
                assert!(
                    (engine.jer(eps) - expected).abs() < 1e-12,
                    "{engine:?} on {eps:?}: {} vs {expected}",
                    engine.jer(eps)
                );
            }
        }
    }

    #[test]
    fn fast_engines_agree_on_large_jury() {
        let eps: Vec<f64> = (0..501).map(|i| 0.01 + (i % 80) as f64 / 100.0).collect();
        let reference = JerEngine::DynamicProgramming.jer(&eps);
        for engine in [JerEngine::TailDp, JerEngine::Convolution, JerEngine::Auto] {
            assert!(
                (engine.jer(&eps) - reference).abs() < 1e-9,
                "{engine:?}: {} vs {reference}",
                engine.jer(&eps)
            );
        }
    }

    #[test]
    fn singleton_jer_is_error_rate() {
        for engine in ENGINES {
            assert!((engine.jer(&[0.37]) - 0.37).abs() < 1e-15);
        }
    }

    #[test]
    fn general_tail_thresholds() {
        let eps = [0.5, 0.5, 0.5];
        for engine in ENGINES {
            assert!((engine.tail(&eps, 0) - 1.0).abs() < 1e-15);
            assert!((engine.tail(&eps, 3) - 0.125).abs() < 1e-12);
            assert_eq!(engine.tail(&eps, 4), 0.0);
        }
    }

    #[test]
    fn distribution_is_consistent_with_jer() {
        let eps = [0.1, 0.4, 0.25, 0.6, 0.33];
        for engine in ENGINES {
            let d = engine.distribution(&eps);
            assert!((d.tail(3) - engine.jer(&eps)).abs() < 1e-12);
        }
    }

    #[test]
    fn lower_bound_is_sound_and_gated() {
        // Reliable jury: γ > 1, bound unavailable.
        assert!(jer_lower_bound(&[0.1; 9]).is_none());
        assert!(jer_gamma(&[0.1; 9]) > 1.0);
        // Error-prone jury: bound available and below the exact JER.
        let eps = vec![0.85; 9];
        let lb = jer_lower_bound(&eps).expect("γ < 1");
        let exact = JerEngine::Auto.jer(&eps);
        assert!(lb <= exact + 1e-12, "{lb} > {exact}");
        assert!(jer_gamma(&eps) < 1.0);
    }

    #[test]
    fn default_engine_is_auto() {
        assert_eq!(JerEngine::default(), JerEngine::Auto);
    }

    #[test]
    fn scratch_form_is_bit_identical_for_every_engine() {
        let mut scratch = JerScratch::new();
        let long: Vec<f64> = (0..90).map(|i| 0.05 + ((i * 7) % 80) as f64 / 100.0).collect();
        for eps in [&[0.37][..], &[0.1, 0.2, 0.2, 0.3, 0.3][..], &long[..17], &long] {
            for engine in ENGINES {
                if engine == JerEngine::Naive && eps.len() > 25 {
                    continue;
                }
                // Repeated use of one scratch across engines and sizes
                // must not perturb results.
                assert_eq!(engine.jer_with(eps, &mut scratch), engine.jer(eps), "{engine:?}");
                assert_eq!(
                    engine.tail_with(eps, 1, &mut scratch),
                    engine.tail(eps, 1),
                    "{engine:?}"
                );
            }
        }
    }
}
