//! `AltrALG` — JSP on the altruism model (Algorithm 3, §3.2).
//!
//! Lemma 3 proves JER is monotone increasing in any member's individual
//! error rate at fixed jury size, so for every size `n` the best jury is
//! the `n` lowest-ε candidates. AltrALG therefore sorts the pool by ε and
//! scans odd prefix sizes `1, 3, 5, …, N`, keeping the prefix with minimum
//! JER. The scan is exact: unlike JER's behaviour in ε, JER is *not*
//! monotone in `n` (Table 2's 5-vs-7 example), so every odd size must be
//! inspected.
//!
//! Two strategies:
//!
//! * [`AltrStrategy::PaperRecompute`] — Algorithm 3 as printed: each
//!   prefix's JER is recomputed from scratch with a configurable engine;
//!   with the Lemma-2 lower-bound check (`γ < 1` gate, then prune when the
//!   bound already exceeds the incumbent JER) optionally enabled, exactly
//!   like lines 5–13 of the pseudo-code. `O(N² log N)` with CBA.
//! * [`AltrStrategy::Incremental`] — an extension: maintain the
//!   carelessness pmf and extend it by two jurors per step (`O(n)` each),
//!   making the whole scan `O(N²)` with a much smaller constant. Produces
//!   identical selections; the `altr_scaling` bench quantifies the gap.

use crate::error::JuryError;
use crate::jer::{jer_gamma, jer_lower_bound, JerEngine, JerScratch};
use crate::juror::Juror;
use crate::problem::{Selection, SolverStats};
use crate::solver::{sorted_order_into, Solver, SolverScratch};
use jury_numeric::poibin::PoiBin;

/// Which AltrALG implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AltrStrategy {
    /// Paper-faithful Algorithm 3 (fresh JER per candidate size).
    PaperRecompute,
    /// Incremental pmf extension (same output, `O(N²)` total).
    #[default]
    Incremental,
}

/// Configuration for [`AltrAlg::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AltrConfig {
    /// Implementation choice.
    pub strategy: AltrStrategy,
    /// Enable the Lemma-2 lower-bound pruning (only meaningful for
    /// [`AltrStrategy::PaperRecompute`]; the incremental variant's JER
    /// updates are already cheaper than the bound itself).
    pub use_lower_bound: bool,
    /// JER engine for recomputation.
    pub engine: JerEngine,
}

impl Default for AltrConfig {
    fn default() -> Self {
        Self {
            strategy: AltrStrategy::Incremental,
            use_lower_bound: false,
            engine: JerEngine::Auto,
        }
    }
}

impl AltrConfig {
    /// The paper's Algorithm 3 with lower-bound checking enabled —
    /// the configuration labelled `m(·, b)` in Figure 3(b).
    pub fn paper_with_bound() -> Self {
        Self {
            strategy: AltrStrategy::PaperRecompute,
            use_lower_bound: true,
            engine: JerEngine::Convolution,
        }
    }

    /// The paper's Algorithm 3 without bounding — the `m(·)` lines of
    /// Figure 3(b).
    pub fn paper_without_bound() -> Self {
        Self {
            strategy: AltrStrategy::PaperRecompute,
            use_lower_bound: false,
            engine: JerEngine::Convolution,
        }
    }
}

/// The AltrM solver, holding its configuration. The zero-sized uses of
/// old (`AltrAlg::solve(pool, &config)`) keep working as associated
/// functions; a configured value implements [`Solver`] for the service
/// layer and reuses caller-provided scratch buffers.
#[derive(Debug, Clone, Copy, Default)]
pub struct AltrAlg {
    /// Strategy, pruning and engine choices.
    pub config: AltrConfig,
}

impl AltrAlg {
    /// A solver value with the given configuration.
    pub fn new(config: AltrConfig) -> Self {
        Self { config }
    }

    /// Selects the minimum-JER jury from `pool` (exact under AltrM).
    ///
    /// Returned member indices refer to positions in `pool`.
    ///
    /// # Errors
    /// [`JuryError::EmptyPool`] when `pool` is empty.
    pub fn solve(pool: &[Juror], config: &AltrConfig) -> Result<Selection, JuryError> {
        Self { config: *config }.solve_with(pool, &mut SolverScratch::new())
    }

    /// The scratch-threaded form of [`AltrAlg::solve`]: bit-identical
    /// results; with warm buffers the only allocation is the returned
    /// [`Selection`].
    pub fn solve_with(
        &self,
        pool: &[Juror],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        if pool.is_empty() {
            return Err(JuryError::EmptyPool);
        }
        sorted_order_into(pool, &mut scratch.order);
        let SolverScratch { order, eps, pmf, jer, .. } = scratch;
        self.scan_sorted(pool, order, eps, pmf, jer)
    }

    /// Runs the prefix scan over a precomputed ε-ascending visit order
    /// (which must be exactly what
    /// [`sorted_order_into`] produces for `pool` — e.g. a K-way merge of
    /// per-shard sorted orders, which yields the identical permutation
    /// because the order is total). Skipping the sort is the serving
    /// layer's sharded fast path; results are bit-identical to
    /// [`AltrAlg::solve`], stats included.
    pub fn solve_presorted(
        &self,
        pool: &[Juror],
        order: &[usize],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        if pool.is_empty() {
            return Err(JuryError::EmptyPool);
        }
        debug_assert_eq!(order.len(), pool.len(), "order must cover the pool");
        let SolverScratch { eps, pmf, jer, .. } = scratch;
        self.scan_sorted(pool, order, eps, pmf, jer)
    }

    /// Algorithm 3 over an ε-sorted visit order: fills `eps` from the
    /// order, scans odd prefixes with the configured strategy and builds
    /// the [`Selection`]. Shared by the sorting and presorted entry
    /// points so both perform the identical float operations.
    fn scan_sorted(
        &self,
        pool: &[Juror],
        order: &[usize],
        eps: &mut Vec<f64>,
        pmf: &mut PoiBin,
        jer_scratch: &mut JerScratch,
    ) -> Result<Selection, JuryError> {
        eps.clear();
        eps.extend(order.iter().map(|&i| pool[i].epsilon()));

        let (best_n, best_jer, stats) = match self.config.strategy {
            AltrStrategy::PaperRecompute => scan_recompute(eps, &self.config, jer_scratch),
            AltrStrategy::Incremental => scan_incremental(eps, pmf),
        };

        let mut members: Vec<usize> = order[..best_n].to_vec();
        members.sort_unstable();
        let total_cost = members.iter().map(|&i| pool[i].cost).sum();
        Ok(Selection { members, jer: best_jer, total_cost, stats })
    }

    /// JER of the best `n`-juror jury for every odd `n` — the full
    /// size-vs-JER profile behind Figure 3(a). Computed incrementally in
    /// `O(N²)`.
    ///
    /// Returns `(n, jer)` pairs for `n = 1, 3, 5, …`.
    pub fn jer_profile(pool: &[Juror]) -> Vec<(usize, f64)> {
        let order = sorted_order(pool);
        let eps_sorted: Vec<f64> = order.iter().map(|&i| pool[i].epsilon()).collect();
        profile(&eps_sorted)
    }

    /// [`AltrAlg::jer_profile`] over rates that are already ε-sorted —
    /// the serving layer's cache build reuses the solve's sorted order
    /// rather than sorting the pool again.
    pub fn jer_profile_sorted(eps_sorted: &[f64]) -> Vec<(usize, f64)> {
        profile(eps_sorted)
    }

    /// Best jury of a *fixed* odd size `n` — by Lemma 3 this is simply
    /// the `n` lowest-ε candidates, so no scan is needed. Useful when the
    /// application dictates the panel size (e.g. a fixed `@`-mention
    /// budget per question).
    ///
    /// # Errors
    /// [`JuryError::EmptyPool`] for an empty pool,
    /// [`JuryError::EvenJurySize`] for even `n`, and
    /// [`JuryError::EmptyJury`] for `n == 0`; `n` larger than the pool is
    /// clamped to the largest odd feasible size.
    pub fn solve_fixed_size(pool: &[Juror], n: usize) -> Result<Selection, JuryError> {
        if pool.is_empty() {
            return Err(JuryError::EmptyPool);
        }
        if n == 0 {
            return Err(JuryError::EmptyJury);
        }
        if n.is_multiple_of(2) {
            return Err(JuryError::EvenJurySize(n));
        }
        let order = sorted_order(pool);
        let n = n.min(if order.len() % 2 == 1 { order.len() } else { order.len() - 1 });
        let eps: Vec<f64> = order[..n].iter().map(|&i| pool[i].epsilon()).collect();
        let jer = JerEngine::Auto.jer(&eps);
        let mut members: Vec<usize> = order[..n].to_vec();
        members.sort_unstable();
        let total_cost = members.iter().map(|&i| pool[i].cost).sum();
        Ok(Selection {
            members,
            jer,
            total_cost,
            stats: SolverStats { jer_evaluations: 1, pruned_by_bound: 0, candidates_considered: 1 },
        })
    }
}

/// Pool indices sorted ascending by ε (ties by index for determinism).
fn sorted_order(pool: &[Juror]) -> Vec<usize> {
    let mut order = Vec::new();
    sorted_order_into(pool, &mut order);
    order
}

/// Odd-size JER profile over prefixes of `eps_sorted`.
fn profile(eps_sorted: &[f64]) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(eps_sorted.len().div_ceil(2));
    let mut pmf = PoiBin::empty();
    for (i, &e) in eps_sorted.iter().enumerate() {
        pmf.push(e);
        let n = i + 1;
        if n % 2 == 1 {
            out.push((n, pmf.tail(JerEngine::majority_threshold(n))));
        }
    }
    out
}

/// The incremental scan: one [`PoiBin::push`] per juror on a pmf reused
/// from the scratch, inspecting every odd prefix size.
fn scan_incremental(eps_sorted: &[f64], pmf: &mut PoiBin) -> (usize, f64, SolverStats) {
    let mut stats = SolverStats::default();
    let mut best_n = 0usize;
    let mut best_jer = f64::INFINITY;
    pmf.reset();
    for (i, &e) in eps_sorted.iter().enumerate() {
        pmf.push(e);
        let n = i + 1;
        if n % 2 == 1 {
            let jer = pmf.tail(JerEngine::majority_threshold(n));
            stats.candidates_considered += 1;
            stats.jer_evaluations += 1;
            if jer < best_jer {
                best_jer = jer;
                best_n = n;
            }
        }
    }
    (best_n, best_jer, stats)
}

fn scan_recompute(
    eps_sorted: &[f64],
    config: &AltrConfig,
    jer_scratch: &mut JerScratch,
) -> (usize, f64, SolverStats) {
    let mut stats = SolverStats::default();
    // Seed with the single best juror, as Algorithm 3 line 1 does.
    let mut best_n = 1usize;
    let mut best_jer = eps_sorted[0];
    stats.candidates_considered += 1;
    stats.jer_evaluations += 1;

    let mut n = 3usize;
    while n <= eps_sorted.len() {
        stats.candidates_considered += 1;
        let cand = &eps_sorted[..n];
        // Algorithm 3 lines 5-13: try the Lemma-2 bound first when γ < 1;
        // a candidate whose *lower* bound already exceeds the incumbent
        // JER cannot win, so its exact JER is never computed.
        let mut skip = false;
        if config.use_lower_bound && jer_gamma(cand) < 1.0 {
            if let Some(lb) = jer_lower_bound(cand) {
                if lb > best_jer {
                    stats.pruned_by_bound += 1;
                    skip = true;
                }
            }
        }
        if !skip {
            let jer = config.engine.jer_with(cand, jer_scratch);
            stats.jer_evaluations += 1;
            if jer < best_jer {
                best_jer = jer;
                best_n = n;
            }
        }
        n += 2;
    }
    (best_n, best_jer, stats)
}

impl Solver for AltrAlg {
    fn name(&self) -> &'static str {
        "altr"
    }

    fn solve(
        &mut self,
        pool: &[Juror],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        self.solve_with(pool, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::pool_from_rates;

    const TABLE2: [f64; 7] = [0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4];

    fn configs() -> Vec<AltrConfig> {
        vec![
            AltrConfig::default(),
            AltrConfig::paper_with_bound(),
            AltrConfig::paper_without_bound(),
            AltrConfig {
                strategy: AltrStrategy::PaperRecompute,
                use_lower_bound: false,
                engine: JerEngine::TailDp,
            },
        ]
    }

    #[test]
    fn selects_size_five_on_motivating_example() {
        let pool = pool_from_rates(&TABLE2).unwrap();
        for config in configs() {
            let sel = AltrAlg::solve(&pool, &config).unwrap();
            assert_eq!(sel.members, vec![0, 1, 2, 3, 4], "{config:?}");
            assert!((sel.jer - 0.07036).abs() < 1e-9, "{config:?}");
        }
    }

    #[test]
    fn single_candidate_pool() {
        let pool = pool_from_rates(&[0.42]).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        assert_eq!(sel.members, vec![0]);
        assert!((sel.jer - 0.42).abs() < 1e-15);
    }

    #[test]
    fn empty_pool_is_an_error() {
        assert_eq!(AltrAlg::solve(&[], &AltrConfig::default()), Err(JuryError::EmptyPool));
    }

    #[test]
    fn unsorted_pool_is_handled() {
        // Same multiset as TABLE2 but shuffled; the selection must pick
        // the five *lowest-ε* jurors wherever they sit in the pool.
        let shuffled = [0.4, 0.3, 0.1, 0.4, 0.2, 0.3, 0.2];
        let pool = pool_from_rates(&shuffled).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        let mut rates: Vec<f64> = sel.members.iter().map(|&i| shuffled[i]).collect();
        rates.sort_by(f64::total_cmp);
        assert_eq!(rates, vec![0.1, 0.2, 0.2, 0.3, 0.3]);
        assert!((sel.jer - 0.07036).abs() < 1e-9);
    }

    #[test]
    fn error_prone_pool_prefers_hands_of_the_few() {
        // All candidates worse than a coin flip: the best jury is the
        // single least-bad juror ("truth rests in the hands of a few").
        let pool = pool_from_rates(&[0.6, 0.65, 0.7, 0.75, 0.8]).unwrap();
        for config in configs() {
            let sel = AltrAlg::solve(&pool, &config).unwrap();
            assert_eq!(sel.members, vec![0], "{config:?}");
            assert!((sel.jer - 0.6).abs() < 1e-12);
        }
    }

    #[test]
    fn reliable_pool_takes_everyone_odd() {
        // Homogeneous reliable jurors: bigger is strictly better (up to
        // the largest odd size).
        let pool = pool_from_rates(&[0.2; 9]).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        assert_eq!(sel.size(), 9);
    }

    #[test]
    fn strategies_agree_on_random_pools() {
        // Deterministic xorshift pools of varied sizes and regimes.
        let mut state = 0x853c49e6748fea9bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..20 {
            let n = 1 + (trial * 7) % 40;
            let rates: Vec<f64> = (0..n).map(|_| 0.02 + 0.96 * next()).collect();
            let pool = pool_from_rates(&rates).unwrap();
            let a = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
            let b = AltrAlg::solve(&pool, &AltrConfig::paper_without_bound()).unwrap();
            let c = AltrAlg::solve(&pool, &AltrConfig::paper_with_bound()).unwrap();
            assert!((a.jer - b.jer).abs() < 1e-9, "trial {trial}");
            assert!((a.jer - c.jer).abs() < 1e-9, "trial {trial}");
            assert_eq!(a.members, b.members, "trial {trial}");
            assert_eq!(a.members, c.members, "trial {trial}");
        }
    }

    #[test]
    fn bound_pruning_never_changes_the_answer_but_saves_work() {
        // Error-prone pool where γ < 1 candidates occur and pruning fires.
        let rates: Vec<f64> = (0..41).map(|i| 0.55 + 0.4 * (i as f64 / 41.0)).collect();
        let pool = pool_from_rates(&rates).unwrap();
        let with = AltrAlg::solve(&pool, &AltrConfig::paper_with_bound()).unwrap();
        let without = AltrAlg::solve(&pool, &AltrConfig::paper_without_bound()).unwrap();
        assert_eq!(with.members, without.members);
        assert!((with.jer - without.jer).abs() < 1e-12);
        assert!(with.stats.pruned_by_bound > 0, "pruning never fired");
        assert!(with.stats.jer_evaluations < without.stats.jer_evaluations);
    }

    #[test]
    fn profile_covers_all_odd_sizes_and_matches_solver() {
        let pool = pool_from_rates(&TABLE2).unwrap();
        let profile = AltrAlg::jer_profile(&pool);
        assert_eq!(profile.iter().map(|&(n, _)| n).collect::<Vec<_>>(), vec![1, 3, 5, 7]);
        let best = profile.iter().cloned().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        assert_eq!(best.0, sel.size());
        assert!((best.1 - sel.jer).abs() < 1e-12);
        // Spot-check against Table 2 values.
        assert!((profile[0].1 - 0.1).abs() < 1e-12);
        assert!((profile[1].1 - 0.072).abs() < 1e-12);
        assert!((profile[2].1 - 0.07036).abs() < 1e-12);
        assert!((profile[3].1 - 0.085248).abs() < 1e-12);
    }

    #[test]
    fn stats_are_populated() {
        let pool = pool_from_rates(&TABLE2).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        assert_eq!(sel.stats.candidates_considered, 4); // sizes 1,3,5,7
        assert_eq!(sel.stats.jer_evaluations, 4);
        assert_eq!(sel.stats.pruned_by_bound, 0);
    }

    #[test]
    fn fixed_size_selection_is_sorted_prefix() {
        let pool = pool_from_rates(&TABLE2).unwrap();
        let sel = AltrAlg::solve_fixed_size(&pool, 3).unwrap();
        assert_eq!(sel.members, vec![0, 1, 2]);
        assert!((sel.jer - 0.072).abs() < 1e-12);
        // Oversized request clamps to the largest odd size.
        let all = AltrAlg::solve_fixed_size(&pool, 99).unwrap();
        assert_eq!(all.size(), 7);
        // Invalid sizes are rejected.
        assert_eq!(AltrAlg::solve_fixed_size(&pool, 4), Err(JuryError::EvenJurySize(4)));
        assert_eq!(AltrAlg::solve_fixed_size(&pool, 0), Err(JuryError::EmptyJury));
        assert_eq!(AltrAlg::solve_fixed_size(&[], 3), Err(JuryError::EmptyPool));
    }

    #[test]
    fn fixed_size_matches_profile_entry() {
        let rates = [0.31, 0.18, 0.44, 0.27, 0.09, 0.36, 0.22];
        let pool = pool_from_rates(&rates).unwrap();
        let profile = AltrAlg::jer_profile(&pool);
        for (n, jer) in profile {
            let sel = AltrAlg::solve_fixed_size(&pool, n).unwrap();
            assert!((sel.jer - jer).abs() < 1e-12, "n={n}");
            assert_eq!(sel.size(), n);
        }
    }

    #[test]
    fn presorted_solve_is_bit_identical_for_every_strategy() {
        use crate::juror::pool_from_rates_and_costs;
        use crate::solver::{sorted_order_into, SolverScratch};
        let quotes: Vec<(f64, f64)> = (0..37)
            .map(|i| (0.03 + ((i * 29) % 90) as f64 / 100.0, (i % 5) as f64 / 4.0))
            .collect();
        let pool = pool_from_rates_and_costs(&quotes).unwrap();
        let mut order = Vec::new();
        sorted_order_into(&pool, &mut order);
        let mut scratch = SolverScratch::new();
        for config in configs() {
            let alg = AltrAlg::new(config);
            let direct = alg.solve_with(&pool, &mut SolverScratch::new()).unwrap();
            let presorted = alg.solve_presorted(&pool, &order, &mut scratch).unwrap();
            assert_eq!(presorted, direct, "{config:?}");
            assert_eq!(presorted.jer.to_bits(), direct.jer.to_bits(), "{config:?}");
            assert_eq!(presorted.total_cost.to_bits(), direct.total_cost.to_bits(), "{config:?}");
        }
        assert_eq!(
            AltrAlg::default().solve_presorted(&[], &[], &mut scratch),
            Err(JuryError::EmptyPool)
        );
    }

    #[test]
    fn optimality_vs_brute_force_over_all_odd_subsets() {
        // Exhaustively verify Lemma 3 + scan = global optimum on a small
        // pool: no odd *subset* (not only prefixes) beats the selection.
        let rates = [0.12, 0.48, 0.33, 0.21, 0.44, 0.27, 0.39];
        let pool = pool_from_rates(&rates).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        let n = rates.len();
        let mut best = f64::INFINITY;
        for mask in 1u32..(1 << n) {
            if mask.count_ones() % 2 == 0 {
                continue;
            }
            let eps: Vec<f64> = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| rates[i]).collect();
            best = best.min(JerEngine::Auto.jer(&eps));
        }
        assert!((sel.jer - best).abs() < 1e-12, "solver {} vs brute {}", sel.jer, best);
    }
}
