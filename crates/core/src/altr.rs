//! `AltrALG` — JSP on the altruism model (Algorithm 3, §3.2).
//!
//! Lemma 3 proves JER is monotone increasing in any member's individual
//! error rate at fixed jury size, so for every size `n` the best jury is
//! the `n` lowest-ε candidates. AltrALG therefore sorts the pool by ε and
//! scans odd prefix sizes `1, 3, 5, …, N`, keeping the prefix with minimum
//! JER. The scan is exact: unlike JER's behaviour in ε, JER is *not*
//! monotone in `n` (Table 2's 5-vs-7 example), so every odd size must be
//! inspected.
//!
//! Two strategies:
//!
//! * [`AltrStrategy::PaperRecompute`] — Algorithm 3 as printed: each
//!   prefix's JER is recomputed from scratch with a configurable engine;
//!   with the Lemma-2 lower-bound check (`γ < 1` gate, then prune when the
//!   bound already exceeds the incumbent JER) optionally enabled, exactly
//!   like lines 5–13 of the pseudo-code. `O(N² log N)` with CBA.
//! * [`AltrStrategy::Incremental`] — an extension: maintain the
//!   carelessness pmf and extend it by two jurors per step (`O(n)` each),
//!   making the whole scan `O(N²)` with a much smaller constant. Produces
//!   identical selections; the `altr_scaling` bench quantifies the gap.

use crate::error::JuryError;
use crate::jer::{jer_gamma, jer_lower_bound, JerEngine, JerScratch};
use crate::juror::Juror;
use crate::problem::{Selection, SolverStats};
use crate::solver::{sorted_order_into, Solver, SolverScratch};
use jury_numeric::bounds::{PrefixMoments, TailBound};
use jury_numeric::poibin::PoiBin;

/// Multiplicative safety slack of the bound-pruned scan: a candidate
/// size is eliminated only when its certified lower bound exceeds the
/// incumbent upper bound by more than this relative margin. Combined
/// with [`PRUNE_MARGIN`] it dominates the `O(1)` moment kernels' worst
/// relative rounding error (≲ 10⁻⁶ once the margin holds), so float
/// rounding can never prune the true argmin —
/// [`AltrAlg::solve_pruned`]'s bit-identity rests on it.
pub const PRUNE_SLACK: f64 = 1e-4;

/// Applicability margin of the bound-pruned scan: a moment bound
/// participates in pruning only when its defining cancellation
/// `|threshold − μ|` retains at least this fraction of the threshold.
/// Near the `μ ≈ threshold` crossover the cancellation amplifies the
/// prefix sums' rounding error without limit; inside the margin the
/// relative error of every kernel stays far below [`PRUNE_SLACK`].
pub const PRUNE_MARGIN: f64 = 1e-4;

/// Which AltrALG implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AltrStrategy {
    /// Paper-faithful Algorithm 3 (fresh JER per candidate size).
    PaperRecompute,
    /// Incremental pmf extension (same output, `O(N²)` total).
    #[default]
    Incremental,
}

/// Configuration for [`AltrAlg::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AltrConfig {
    /// Implementation choice.
    pub strategy: AltrStrategy,
    /// Enable the Lemma-2 lower-bound pruning (only meaningful for
    /// [`AltrStrategy::PaperRecompute`]; the incremental variant's JER
    /// updates are already cheaper than the bound itself).
    pub use_lower_bound: bool,
    /// JER engine for recomputation.
    pub engine: JerEngine,
}

impl Default for AltrConfig {
    fn default() -> Self {
        Self {
            strategy: AltrStrategy::Incremental,
            use_lower_bound: false,
            engine: JerEngine::Auto,
        }
    }
}

impl AltrConfig {
    /// The paper's Algorithm 3 with lower-bound checking enabled —
    /// the configuration labelled `m(·, b)` in Figure 3(b).
    pub fn paper_with_bound() -> Self {
        Self {
            strategy: AltrStrategy::PaperRecompute,
            use_lower_bound: true,
            engine: JerEngine::Convolution,
        }
    }

    /// The paper's Algorithm 3 without bounding — the `m(·)` lines of
    /// Figure 3(b).
    pub fn paper_without_bound() -> Self {
        Self {
            strategy: AltrStrategy::PaperRecompute,
            use_lower_bound: false,
            engine: JerEngine::Convolution,
        }
    }
}

/// The AltrM solver, holding its configuration. The zero-sized uses of
/// old (`AltrAlg::solve(pool, &config)`) keep working as associated
/// functions; a configured value implements [`Solver`] for the service
/// layer and reuses caller-provided scratch buffers.
#[derive(Debug, Clone, Copy, Default)]
pub struct AltrAlg {
    /// Strategy, pruning and engine choices.
    pub config: AltrConfig,
}

impl AltrAlg {
    /// A solver value with the given configuration.
    pub fn new(config: AltrConfig) -> Self {
        Self { config }
    }

    /// Selects the minimum-JER jury from `pool` (exact under AltrM).
    ///
    /// Returned member indices refer to positions in `pool`.
    ///
    /// # Errors
    /// [`JuryError::EmptyPool`] when `pool` is empty.
    pub fn solve(pool: &[Juror], config: &AltrConfig) -> Result<Selection, JuryError> {
        Self { config: *config }.solve_with(pool, &mut SolverScratch::new())
    }

    /// The scratch-threaded form of [`AltrAlg::solve`]: bit-identical
    /// results; with warm buffers the only allocation is the returned
    /// [`Selection`].
    pub fn solve_with(
        &self,
        pool: &[Juror],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        if pool.is_empty() {
            return Err(JuryError::EmptyPool);
        }
        sorted_order_into(pool, &mut scratch.order);
        let SolverScratch { order, eps, pmf, jer, .. } = scratch;
        self.scan_sorted(pool, order, eps, pmf, jer)
    }

    /// Runs the prefix scan over a precomputed ε-ascending visit order
    /// (which must be exactly what
    /// [`sorted_order_into`] produces for `pool` — e.g. a K-way merge of
    /// per-shard sorted orders, which yields the identical permutation
    /// because the order is total). Skipping the sort is the serving
    /// layer's sharded fast path; results are bit-identical to
    /// [`AltrAlg::solve`], stats included.
    pub fn solve_presorted(
        &self,
        pool: &[Juror],
        order: &[usize],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        if pool.is_empty() {
            return Err(JuryError::EmptyPool);
        }
        debug_assert_eq!(order.len(), pool.len(), "order must cover the pool");
        let SolverScratch { eps, pmf, jer, .. } = scratch;
        self.scan_sorted(pool, order, eps, pmf, jer)
    }

    /// The bound-pruned form of [`AltrAlg::solve_presorted`]: a sweep of
    /// `O(1)`-per-prefix moment bounds
    /// ([`jury_numeric::bounds::PrefixMoments`]) first eliminates every
    /// odd size whose Paley–Zygmund lower bound exceeds the best
    /// Cantelli/Chernoff upper bound seen anywhere (plus the exact
    /// size-1 JER); exact JER is then evaluated only at the survivors,
    /// and the incremental pmf scan *stops at the largest survivor*
    /// instead of walking the whole pool. When the high-ε tail of the
    /// run prunes, the post-warm-up cost drops from `O(N²)` to
    /// `O(N + M²)` where `M` is the largest surviving size.
    ///
    /// **Bit-identity contract.** The returned `members`, `jer` and
    /// `total_cost` are bit-identical to
    /// [`AltrAlg::solve_presorted`] under
    /// [`AltrStrategy::Incremental`] (the default): survivors are
    /// evaluated by the identical sequential [`PoiBin::push`]/tail
    /// operations, pruning is sound (an eliminated size's exact JER
    /// strictly exceeds the incumbent's, with [`PRUNE_SLACK`] and
    /// [`PRUNE_MARGIN`] absorbing kernel rounding), and survivors are
    /// scanned ascending with a strict comparison so the smallest-`n`
    /// tie-break is preserved. The [`SolverStats`] *differ by design*:
    /// `jer_evaluations` counts only the survivors and
    /// `pruned_by_bound` the eliminated sizes, while
    /// `candidates_considered` still counts every odd size. The
    /// configured strategy/engine are ignored — this scan *is* its own
    /// strategy.
    ///
    /// # Errors
    /// [`JuryError::EmptyPool`] when `pool` is empty.
    pub fn solve_pruned(
        &self,
        pool: &[Juror],
        order: &[usize],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        if pool.is_empty() {
            return Err(JuryError::EmptyPool);
        }
        debug_assert_eq!(order.len(), pool.len(), "order must cover the pool");
        let SolverScratch { eps, pmf, bounds, .. } = scratch;
        eps.clear();
        eps.extend(order.iter().map(|&i| pool[i].epsilon()));
        let (best_n, best_jer, stats) = scan_pruned(eps, pmf, bounds);
        let mut members: Vec<usize> = order[..best_n].to_vec();
        members.sort_unstable();
        let total_cost = members.iter().map(|&i| pool[i].cost).sum();
        Ok(Selection { members, jer: best_jer, total_cost, stats })
    }

    /// Algorithm 3 over an ε-sorted visit order: fills `eps` from the
    /// order, scans odd prefixes with the configured strategy and builds
    /// the [`Selection`]. Shared by the sorting and presorted entry
    /// points so both perform the identical float operations.
    fn scan_sorted(
        &self,
        pool: &[Juror],
        order: &[usize],
        eps: &mut Vec<f64>,
        pmf: &mut PoiBin,
        jer_scratch: &mut JerScratch,
    ) -> Result<Selection, JuryError> {
        eps.clear();
        eps.extend(order.iter().map(|&i| pool[i].epsilon()));

        let (best_n, best_jer, stats) = match self.config.strategy {
            AltrStrategy::PaperRecompute => scan_recompute(eps, &self.config, jer_scratch),
            AltrStrategy::Incremental => scan_incremental(eps, pmf),
        };

        let mut members: Vec<usize> = order[..best_n].to_vec();
        members.sort_unstable();
        let total_cost = members.iter().map(|&i| pool[i].cost).sum();
        Ok(Selection { members, jer: best_jer, total_cost, stats })
    }

    /// JER of the best `n`-juror jury for every odd `n` — the full
    /// size-vs-JER profile behind Figure 3(a). Computed incrementally in
    /// `O(N²)`.
    ///
    /// Returns `(n, jer)` pairs for `n = 1, 3, 5, …`.
    pub fn jer_profile(pool: &[Juror]) -> Vec<(usize, f64)> {
        let order = sorted_order(pool);
        let eps_sorted: Vec<f64> = order.iter().map(|&i| pool[i].epsilon()).collect();
        profile(&eps_sorted)
    }

    /// [`AltrAlg::jer_profile`] over rates that are already ε-sorted —
    /// the serving layer's cache build reuses the solve's sorted order
    /// rather than sorting the pool again.
    pub fn jer_profile_sorted(eps_sorted: &[f64]) -> Vec<(usize, f64)> {
        profile(eps_sorted)
    }

    /// Best jury of a *fixed* odd size `n` — by Lemma 3 this is simply
    /// the `n` lowest-ε candidates, so no scan is needed. Useful when the
    /// application dictates the panel size (e.g. a fixed `@`-mention
    /// budget per question).
    ///
    /// # Errors
    /// [`JuryError::EmptyPool`] for an empty pool,
    /// [`JuryError::EvenJurySize`] for even `n`, and
    /// [`JuryError::EmptyJury`] for `n == 0`; `n` larger than the pool is
    /// clamped to the largest odd feasible size.
    pub fn solve_fixed_size(pool: &[Juror], n: usize) -> Result<Selection, JuryError> {
        if pool.is_empty() {
            return Err(JuryError::EmptyPool);
        }
        if n == 0 {
            return Err(JuryError::EmptyJury);
        }
        if n.is_multiple_of(2) {
            return Err(JuryError::EvenJurySize(n));
        }
        let order = sorted_order(pool);
        let n = n.min(if order.len() % 2 == 1 { order.len() } else { order.len() - 1 });
        let eps: Vec<f64> = order[..n].iter().map(|&i| pool[i].epsilon()).collect();
        let jer = JerEngine::Auto.jer(&eps);
        let mut members: Vec<usize> = order[..n].to_vec();
        members.sort_unstable();
        let total_cost = members.iter().map(|&i| pool[i].cost).sum();
        Ok(Selection {
            members,
            jer,
            total_cost,
            stats: SolverStats { jer_evaluations: 1, pruned_by_bound: 0, candidates_considered: 1 },
        })
    }
}

/// Pool indices sorted ascending by ε (ties by index for determinism).
fn sorted_order(pool: &[Juror]) -> Vec<usize> {
    let mut order = Vec::new();
    sorted_order_into(pool, &mut order);
    order
}

/// Odd-size JER profile over prefixes of `eps_sorted`.
fn profile(eps_sorted: &[f64]) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(eps_sorted.len().div_ceil(2));
    let mut pmf = PoiBin::empty();
    for (i, &e) in eps_sorted.iter().enumerate() {
        pmf.push(e);
        let n = i + 1;
        if n % 2 == 1 {
            out.push((n, pmf.tail(JerEngine::majority_threshold(n))));
        }
    }
    out
}

/// The incremental scan: one [`PoiBin::push`] per juror on a pmf reused
/// from the scratch, inspecting every odd prefix size.
fn scan_incremental(eps_sorted: &[f64], pmf: &mut PoiBin) -> (usize, f64, SolverStats) {
    let mut stats = SolverStats::default();
    let mut best_n = 0usize;
    let mut best_jer = f64::INFINITY;
    pmf.reset();
    for (i, &e) in eps_sorted.iter().enumerate() {
        pmf.push(e);
        let n = i + 1;
        if n % 2 == 1 {
            let jer = pmf.tail(JerEngine::majority_threshold(n));
            stats.candidates_considered += 1;
            stats.jer_evaluations += 1;
            if jer < best_jer {
                best_jer = jer;
                best_n = n;
            }
        }
    }
    (best_n, best_jer, stats)
}

/// The bound-pruned scan behind [`AltrAlg::solve_pruned`].
///
/// Pass 1 streams [`PrefixMoments`] over the run: per odd size it
/// collects the Paley–Zygmund lower bound (`-∞` when inapplicable or
/// inside [`PRUNE_MARGIN`] of the `μ = t` crossover) into `lower`, and
/// folds the applicable Cantelli/Chernoff upper bounds — seeded with the
/// exact size-1 JER, which is the first rate itself — into one incumbent
/// upper bound. Pass 2 runs the ordinary incremental pmf scan, but only
/// up to the largest size whose lower bound fails to clear the incumbent
/// by [`PRUNE_SLACK`], evaluating tails only at those survivors.
fn scan_pruned(
    eps_sorted: &[f64],
    pmf: &mut PoiBin,
    lower: &mut Vec<f64>,
) -> (usize, f64, SolverStats) {
    let mut stats = SolverStats::default();
    let mut moments = PrefixMoments::new();
    let mut incumbent_ub = f64::INFINITY;
    lower.clear();
    for (i, &e) in eps_sorted.iter().enumerate() {
        moments.push(e);
        let n = i + 1;
        if n % 2 == 0 {
            continue;
        }
        let t = JerEngine::majority_threshold(n);
        let margin = PRUNE_MARGIN * t as f64;
        if n == 1 {
            // JER of the single best juror is its rate, bit-exactly
            // (the tail of a one-trial pmf) — a free certified incumbent.
            incumbent_ub = incumbent_ub.min(e);
        }
        if t as f64 - moments.mu() >= margin {
            if let TailBound::Value(v) = moments.cantelli_upper(t) {
                incumbent_ub = incumbent_ub.min(v);
            }
            if let TailBound::Value(v) = moments.chernoff_upper(t) {
                incumbent_ub = incumbent_ub.min(v);
            }
        }
        let lb = if moments.mu() - t as f64 >= margin {
            match moments.paley_zygmund_lower(t) {
                TailBound::Value(v) => v,
                TailBound::Inapplicable => f64::NEG_INFINITY,
            }
        } else {
            f64::NEG_INFINITY
        };
        lower.push(lb);
    }

    // Survivors: odd sizes whose lower bound cannot certify defeat.
    let cutoff = incumbent_ub * (1.0 + PRUNE_SLACK);
    let mut max_survivor = 0usize;
    for (k, &lb) in lower.iter().enumerate() {
        let n = 2 * k + 1;
        stats.candidates_considered += 1;
        if lb > cutoff {
            stats.pruned_by_bound += 1;
        } else {
            max_survivor = n;
        }
    }

    let mut best_n = 0usize;
    let mut best_jer = f64::INFINITY;
    pmf.reset();
    for (i, &e) in eps_sorted[..max_survivor].iter().enumerate() {
        pmf.push(e);
        let n = i + 1;
        if n % 2 == 1 && lower[(n - 1) / 2] <= cutoff {
            let jer = pmf.tail(JerEngine::majority_threshold(n));
            stats.jer_evaluations += 1;
            if jer < best_jer {
                best_jer = jer;
                best_n = n;
            }
        }
    }
    (best_n, best_jer, stats)
}

/// The odd-size JER profile (the Figure 3(a) curve) as a *repairable*
/// artefact. A fresh build performs exactly the sequential pushes of
/// [`AltrAlg::jer_profile_sorted`]; after the underlying ε-sorted run
/// mutates, [`JerProfile::repair_from`] reuses every entry whose prefix
/// multiset is untouched **verbatim** (bit-preserved) and re-derives
/// only the suffix, resuming from a caller-supplied prefix distribution
/// (a serving layer's pmf-ladder checkpoint) instead of pushing from
/// zero.
///
/// Repaired suffix entries inherit the resume pmf's lineage: resumed
/// from a push-built checkpoint they are bit-identical to a fresh
/// build; resumed from a deconvolution-repaired checkpoint they are
/// only *numerically* equal (the serving layer documents the tolerance).
/// Nothing on a solver's bit-identical path reads a profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JerProfile {
    /// `(n, JER of the n lowest-ε jurors)` for `n = 1, 3, 5, …`.
    entries: Vec<(usize, f64)>,
}

impl JerProfile {
    /// Builds the full profile over an ε-ascending run (`O(len²)`
    /// sequential pushes — identical float operations to
    /// [`AltrAlg::jer_profile_sorted`]).
    pub fn build(eps_sorted: &[f64]) -> Self {
        Self { entries: profile(eps_sorted) }
    }

    /// The profile entries, ascending in `n`.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Rebuilds a profile from decoded entries (snapshot restore),
    /// re-validating the shape [`JerProfile::build`] guarantees: entry
    /// `i` covers exactly `n = 2i + 1`. Returns `None` for any other
    /// shape — the repair machinery indexes by that contract.
    pub fn from_entries(entries: Vec<(usize, f64)>) -> Option<Self> {
        entries.iter().enumerate().all(|(i, &(n, _))| n == 2 * i + 1).then_some(Self { entries })
    }

    /// Repairs the profile after the run changed at (0-based) rank
    /// `rank` — the lowest rank whose value differs from the pre-mutation
    /// run (for an update that moved a value between ranks `a` and `b`,
    /// `min(a, b)`). `eps_sorted` is the **post-mutation** run; `pmf`
    /// must hold the distribution of `eps_sorted[..resume]` for some
    /// `resume ≤ rank` (it is consumed — on return it holds the full-run
    /// distribution). Entries for odd `n ≤ rank` are reused verbatim;
    /// the rest are re-derived by sequential pushes from `resume`,
    /// handling runs that grew (insert) or shrank (removal) by one.
    pub fn repair_from(
        &mut self,
        eps_sorted: &[f64],
        rank: usize,
        resume: usize,
        pmf: &mut PoiBin,
    ) {
        debug_assert!(resume <= rank && resume <= eps_sorted.len(), "resume must precede the edit");
        debug_assert_eq!(pmf.n(), resume, "pmf must cover eps[..resume]");
        debug_assert!(
            self.entries.len() + 1 >= eps_sorted.len().div_ceil(2),
            "profile must cover the pre-mutation run"
        );
        self.entries.truncate(rank.div_ceil(2));
        for (i, &e) in eps_sorted.iter().enumerate().skip(resume) {
            pmf.push(e);
            let n = i + 1;
            if n % 2 == 1 && n > rank {
                self.entries.push((n, pmf.tail(JerEngine::majority_threshold(n))));
            }
        }
    }
}

fn scan_recompute(
    eps_sorted: &[f64],
    config: &AltrConfig,
    jer_scratch: &mut JerScratch,
) -> (usize, f64, SolverStats) {
    let mut stats = SolverStats::default();
    // Seed with the single best juror, as Algorithm 3 line 1 does.
    let mut best_n = 1usize;
    let mut best_jer = eps_sorted[0];
    stats.candidates_considered += 1;
    stats.jer_evaluations += 1;

    let mut n = 3usize;
    while n <= eps_sorted.len() {
        stats.candidates_considered += 1;
        let cand = &eps_sorted[..n];
        // Algorithm 3 lines 5-13: try the Lemma-2 bound first when γ < 1;
        // a candidate whose *lower* bound already exceeds the incumbent
        // JER cannot win, so its exact JER is never computed.
        let mut skip = false;
        if config.use_lower_bound && jer_gamma(cand) < 1.0 {
            if let Some(lb) = jer_lower_bound(cand) {
                if lb > best_jer {
                    stats.pruned_by_bound += 1;
                    skip = true;
                }
            }
        }
        if !skip {
            let jer = config.engine.jer_with(cand, jer_scratch);
            stats.jer_evaluations += 1;
            if jer < best_jer {
                best_jer = jer;
                best_n = n;
            }
        }
        n += 2;
    }
    (best_n, best_jer, stats)
}

impl Solver for AltrAlg {
    fn name(&self) -> &'static str {
        "altr"
    }

    fn solve(
        &mut self,
        pool: &[Juror],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        self.solve_with(pool, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::pool_from_rates;

    const TABLE2: [f64; 7] = [0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4];

    fn configs() -> Vec<AltrConfig> {
        vec![
            AltrConfig::default(),
            AltrConfig::paper_with_bound(),
            AltrConfig::paper_without_bound(),
            AltrConfig {
                strategy: AltrStrategy::PaperRecompute,
                use_lower_bound: false,
                engine: JerEngine::TailDp,
            },
        ]
    }

    #[test]
    fn selects_size_five_on_motivating_example() {
        let pool = pool_from_rates(&TABLE2).unwrap();
        for config in configs() {
            let sel = AltrAlg::solve(&pool, &config).unwrap();
            assert_eq!(sel.members, vec![0, 1, 2, 3, 4], "{config:?}");
            assert!((sel.jer - 0.07036).abs() < 1e-9, "{config:?}");
        }
    }

    #[test]
    fn single_candidate_pool() {
        let pool = pool_from_rates(&[0.42]).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        assert_eq!(sel.members, vec![0]);
        assert!((sel.jer - 0.42).abs() < 1e-15);
    }

    #[test]
    fn empty_pool_is_an_error() {
        assert_eq!(AltrAlg::solve(&[], &AltrConfig::default()), Err(JuryError::EmptyPool));
    }

    #[test]
    fn unsorted_pool_is_handled() {
        // Same multiset as TABLE2 but shuffled; the selection must pick
        // the five *lowest-ε* jurors wherever they sit in the pool.
        let shuffled = [0.4, 0.3, 0.1, 0.4, 0.2, 0.3, 0.2];
        let pool = pool_from_rates(&shuffled).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        let mut rates: Vec<f64> = sel.members.iter().map(|&i| shuffled[i]).collect();
        rates.sort_by(f64::total_cmp);
        assert_eq!(rates, vec![0.1, 0.2, 0.2, 0.3, 0.3]);
        assert!((sel.jer - 0.07036).abs() < 1e-9);
    }

    #[test]
    fn error_prone_pool_prefers_hands_of_the_few() {
        // All candidates worse than a coin flip: the best jury is the
        // single least-bad juror ("truth rests in the hands of a few").
        let pool = pool_from_rates(&[0.6, 0.65, 0.7, 0.75, 0.8]).unwrap();
        for config in configs() {
            let sel = AltrAlg::solve(&pool, &config).unwrap();
            assert_eq!(sel.members, vec![0], "{config:?}");
            assert!((sel.jer - 0.6).abs() < 1e-12);
        }
    }

    #[test]
    fn reliable_pool_takes_everyone_odd() {
        // Homogeneous reliable jurors: bigger is strictly better (up to
        // the largest odd size).
        let pool = pool_from_rates(&[0.2; 9]).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        assert_eq!(sel.size(), 9);
    }

    #[test]
    fn strategies_agree_on_random_pools() {
        // Deterministic xorshift pools of varied sizes and regimes.
        let mut state = 0x853c49e6748fea9bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..20 {
            let n = 1 + (trial * 7) % 40;
            let rates: Vec<f64> = (0..n).map(|_| 0.02 + 0.96 * next()).collect();
            let pool = pool_from_rates(&rates).unwrap();
            let a = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
            let b = AltrAlg::solve(&pool, &AltrConfig::paper_without_bound()).unwrap();
            let c = AltrAlg::solve(&pool, &AltrConfig::paper_with_bound()).unwrap();
            assert!((a.jer - b.jer).abs() < 1e-9, "trial {trial}");
            assert!((a.jer - c.jer).abs() < 1e-9, "trial {trial}");
            assert_eq!(a.members, b.members, "trial {trial}");
            assert_eq!(a.members, c.members, "trial {trial}");
        }
    }

    #[test]
    fn bound_pruning_never_changes_the_answer_but_saves_work() {
        // Error-prone pool where γ < 1 candidates occur and pruning fires.
        let rates: Vec<f64> = (0..41).map(|i| 0.55 + 0.4 * (i as f64 / 41.0)).collect();
        let pool = pool_from_rates(&rates).unwrap();
        let with = AltrAlg::solve(&pool, &AltrConfig::paper_with_bound()).unwrap();
        let without = AltrAlg::solve(&pool, &AltrConfig::paper_without_bound()).unwrap();
        assert_eq!(with.members, without.members);
        assert!((with.jer - without.jer).abs() < 1e-12);
        assert!(with.stats.pruned_by_bound > 0, "pruning never fired");
        assert!(with.stats.jer_evaluations < without.stats.jer_evaluations);
    }

    #[test]
    fn profile_covers_all_odd_sizes_and_matches_solver() {
        let pool = pool_from_rates(&TABLE2).unwrap();
        let profile = AltrAlg::jer_profile(&pool);
        assert_eq!(profile.iter().map(|&(n, _)| n).collect::<Vec<_>>(), vec![1, 3, 5, 7]);
        let best = profile.iter().cloned().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        assert_eq!(best.0, sel.size());
        assert!((best.1 - sel.jer).abs() < 1e-12);
        // Spot-check against Table 2 values.
        assert!((profile[0].1 - 0.1).abs() < 1e-12);
        assert!((profile[1].1 - 0.072).abs() < 1e-12);
        assert!((profile[2].1 - 0.07036).abs() < 1e-12);
        assert!((profile[3].1 - 0.085248).abs() < 1e-12);
    }

    #[test]
    fn stats_are_populated() {
        let pool = pool_from_rates(&TABLE2).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        assert_eq!(sel.stats.candidates_considered, 4); // sizes 1,3,5,7
        assert_eq!(sel.stats.jer_evaluations, 4);
        assert_eq!(sel.stats.pruned_by_bound, 0);
    }

    #[test]
    fn fixed_size_selection_is_sorted_prefix() {
        let pool = pool_from_rates(&TABLE2).unwrap();
        let sel = AltrAlg::solve_fixed_size(&pool, 3).unwrap();
        assert_eq!(sel.members, vec![0, 1, 2]);
        assert!((sel.jer - 0.072).abs() < 1e-12);
        // Oversized request clamps to the largest odd size.
        let all = AltrAlg::solve_fixed_size(&pool, 99).unwrap();
        assert_eq!(all.size(), 7);
        // Invalid sizes are rejected.
        assert_eq!(AltrAlg::solve_fixed_size(&pool, 4), Err(JuryError::EvenJurySize(4)));
        assert_eq!(AltrAlg::solve_fixed_size(&pool, 0), Err(JuryError::EmptyJury));
        assert_eq!(AltrAlg::solve_fixed_size(&[], 3), Err(JuryError::EmptyPool));
    }

    #[test]
    fn fixed_size_matches_profile_entry() {
        let rates = [0.31, 0.18, 0.44, 0.27, 0.09, 0.36, 0.22];
        let pool = pool_from_rates(&rates).unwrap();
        let profile = AltrAlg::jer_profile(&pool);
        for (n, jer) in profile {
            let sel = AltrAlg::solve_fixed_size(&pool, n).unwrap();
            assert!((sel.jer - jer).abs() < 1e-12, "n={n}");
            assert_eq!(sel.size(), n);
        }
    }

    #[test]
    fn presorted_solve_is_bit_identical_for_every_strategy() {
        use crate::juror::pool_from_rates_and_costs;
        use crate::solver::{sorted_order_into, SolverScratch};
        let quotes: Vec<(f64, f64)> = (0..37)
            .map(|i| (0.03 + ((i * 29) % 90) as f64 / 100.0, (i % 5) as f64 / 4.0))
            .collect();
        let pool = pool_from_rates_and_costs(&quotes).unwrap();
        let mut order = Vec::new();
        sorted_order_into(&pool, &mut order);
        let mut scratch = SolverScratch::new();
        for config in configs() {
            let alg = AltrAlg::new(config);
            let direct = alg.solve_with(&pool, &mut SolverScratch::new()).unwrap();
            let presorted = alg.solve_presorted(&pool, &order, &mut scratch).unwrap();
            assert_eq!(presorted, direct, "{config:?}");
            assert_eq!(presorted.jer.to_bits(), direct.jer.to_bits(), "{config:?}");
            assert_eq!(presorted.total_cost.to_bits(), direct.total_cost.to_bits(), "{config:?}");
        }
        assert_eq!(
            AltrAlg::default().solve_presorted(&[], &[], &mut scratch),
            Err(JuryError::EmptyPool)
        );
    }

    /// `solve_pruned` against `solve_presorted`: members, JER bits and
    /// cost bits must match; stats are allowed (and expected) to differ.
    fn assert_pruned_matches(pool: &[Juror], ctx: &str) -> (Selection, Selection) {
        use crate::solver::sorted_order_into;
        let mut order = Vec::new();
        sorted_order_into(pool, &mut order);
        let alg = AltrAlg::default();
        let full = alg.solve_presorted(pool, &order, &mut SolverScratch::new()).unwrap();
        let pruned = alg.solve_pruned(pool, &order, &mut SolverScratch::new()).unwrap();
        assert_eq!(pruned.members, full.members, "{ctx}: members");
        assert_eq!(pruned.jer.to_bits(), full.jer.to_bits(), "{ctx}: jer bits");
        assert_eq!(pruned.total_cost.to_bits(), full.total_cost.to_bits(), "{ctx}: cost bits");
        assert_eq!(
            pruned.stats.candidates_considered, full.stats.candidates_considered,
            "{ctx}: both scans consider every odd size"
        );
        assert_eq!(
            pruned.stats.jer_evaluations + pruned.stats.pruned_by_bound,
            full.stats.jer_evaluations,
            "{ctx}: every size is either evaluated or pruned"
        );
        (pruned, full)
    }

    #[test]
    fn pruned_scan_is_bit_identical_across_regimes() {
        // Reliable, error-prone, mixed, degenerate and adversarial pools.
        let cases: Vec<(&str, Vec<f64>)> = vec![
            ("table2", TABLE2.to_vec()),
            ("single", vec![0.42]),
            ("all-bad", vec![0.6, 0.65, 0.7, 0.75, 0.8]),
            ("all-good", vec![0.2; 9]),
            ("coin-flips", vec![0.5; 11]),
            ("near-zeros-and-ones", vec![1e-12, 1e-12, 1.0 - 1e-12, 1.0 - 1e-12, 1.0 - 1e-12, 0.3]),
            ("near-half", (0..21).map(|i| 0.5 + (i as f64 - 10.0) * 1e-12).collect()),
            (
                "expert-plus-mob",
                (0..101).map(|i| if i < 5 { 0.03 + i as f64 * 0.01 } else { 0.8 }).collect(),
            ),
            ("uniform-spread", (0..200).map(|i| 0.02 + 0.96 * (i as f64 / 200.0)).collect()),
        ];
        for (label, rates) in cases {
            let pool = pool_from_rates(&rates).unwrap();
            assert_pruned_matches(&pool, label);
        }
    }

    #[test]
    fn pruned_scan_saves_work_on_error_prone_tails() {
        // A few experts and a long unreliable tail: the paper-realistic
        // regime. The PZ bound must eliminate the tail and the scan must
        // stop early.
        let rates: Vec<f64> =
            (0..301).map(|i| if i < 9 { 0.05 + i as f64 * 0.02 } else { 0.85 }).collect();
        let pool = pool_from_rates(&rates).unwrap();
        let (pruned, full) = assert_pruned_matches(&pool, "expert-tail");
        assert!(pruned.stats.pruned_by_bound > 100, "tail must prune: {:?}", pruned.stats);
        assert!(pruned.stats.jer_evaluations < full.stats.jer_evaluations / 4);
    }

    #[test]
    fn pruned_scan_on_random_pools() {
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..40 {
            let n = 1 + (trial * 13) % 120;
            // Alternate reliable-heavy and error-prone-heavy regimes.
            let shift = if trial % 2 == 0 { 0.0 } else { 0.4 };
            let rates: Vec<f64> =
                (0..n).map(|_| (0.01 + shift + 0.58 * next()).min(0.99)).collect();
            let pool = pool_from_rates(&rates).unwrap();
            assert_pruned_matches(&pool, &format!("trial {trial}"));
        }
    }

    #[test]
    fn pruned_empty_pool_is_an_error() {
        assert_eq!(
            AltrAlg::default().solve_pruned(&[], &[], &mut SolverScratch::new()),
            Err(JuryError::EmptyPool)
        );
    }

    #[test]
    fn jer_profile_type_matches_free_function() {
        let rates = [0.31, 0.18, 0.44, 0.27, 0.09, 0.36, 0.22, 0.5];
        let pool = pool_from_rates(&rates).unwrap();
        let mut eps: Vec<f64> = rates.to_vec();
        eps.sort_by(f64::total_cmp);
        let profile = JerProfile::build(&eps);
        assert_eq!(profile.entries(), AltrAlg::jer_profile(&pool).as_slice());
    }

    #[test]
    fn jer_profile_repairs_update_insert_and_remove() {
        let base: Vec<f64> = {
            let mut eps: Vec<f64> =
                (0..90).map(|i| 0.02 + 0.9 * ((i as f64 * 0.6180339887498949) % 1.0)).collect();
            eps.sort_by(f64::total_cmp);
            eps
        };

        // Update: move the value at rank 20 to a high rank.
        let mut eps = base.clone();
        let mut profile = JerProfile::build(&eps);
        eps.remove(20);
        let r_new = eps.partition_point(|&e| e < 0.88);
        eps.insert(r_new, 0.88);
        let rank = 20usize.min(r_new);
        // Resume from a mid-run prefix pmf, as a ladder checkpoint would.
        let resume = rank.min(16);
        let mut pmf = PoiBin::from_error_rates_dp(&eps[..resume]);
        profile.repair_from(&eps, rank, resume, &mut pmf);
        assert_eq!(profile, JerProfile::build(&eps), "update repair");

        // Insert: the run grows by one and gains an entry.
        let mut eps = base.clone();
        let mut profile = JerProfile::build(&eps);
        let r = eps.partition_point(|&e| e < 0.5);
        eps.insert(r, 0.5);
        let mut pmf = PoiBin::empty();
        profile.repair_from(&eps, r, 0, &mut pmf);
        assert_eq!(profile, JerProfile::build(&eps), "insert repair");
        assert_eq!(profile.entries().len(), eps.len().div_ceil(2));

        // Remove: the run shrinks; the stale top entry must vanish.
        let mut eps = base.clone();
        let mut profile = JerProfile::build(&eps);
        eps.remove(70);
        let resume = 64usize;
        let mut pmf = PoiBin::from_error_rates_dp(&eps[..resume]);
        profile.repair_from(&eps, 70, resume, &mut pmf);
        assert_eq!(profile, JerProfile::build(&eps), "remove repair");

        // Removing the last element of an odd-length run drops an entry.
        let mut eps = base[..7].to_vec();
        let mut profile = JerProfile::build(&eps);
        eps.pop();
        let mut pmf = PoiBin::empty();
        profile.repair_from(&eps, 6, 0, &mut pmf);
        assert_eq!(profile, JerProfile::build(&eps), "tail remove repair");
    }

    #[test]
    fn jer_profile_repair_preserves_prefix_entries_verbatim() {
        let mut eps: Vec<f64> = (0..40).map(|i| 0.05 + 0.02 * i as f64).collect();
        let mut profile = JerProfile::build(&eps);
        let before: Vec<(usize, f64)> = profile.entries().to_vec();
        // Mutate rank 25: entries for n ≤ 25 must be the same bits even
        // though the resume pushes pass through them.
        eps[25] = 0.9;
        let mut pmf = PoiBin::from_error_rates_dp(&eps[..10]);
        profile.repair_from(&eps, 25, 10, &mut pmf);
        for (old, new) in before.iter().zip(profile.entries()).take(13) {
            assert_eq!(old.0, new.0);
            assert_eq!(old.1.to_bits(), new.1.to_bits(), "n={}", old.0);
        }
    }

    #[test]
    fn optimality_vs_brute_force_over_all_odd_subsets() {
        // Exhaustively verify Lemma 3 + scan = global optimum on a small
        // pool: no odd *subset* (not only prefixes) beats the selection.
        let rates = [0.12, 0.48, 0.33, 0.21, 0.44, 0.27, 0.39];
        let pool = pool_from_rates(&rates).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        let n = rates.len();
        let mut best = f64::INFINITY;
        for mask in 1u32..(1 << n) {
            if mask.count_ones() % 2 == 0 {
                continue;
            }
            let eps: Vec<f64> = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| rates[i]).collect();
            best = best.min(JerEngine::Auto.jer(&eps));
        }
        assert!((sel.jer - best).abs() < 1e-12, "solver {} vs brute {}", sel.jer, best);
    }
}
