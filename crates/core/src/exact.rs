//! Exact (exponential) JSP solvers — the evaluation's "OPT" ground truth.
//!
//! §5.1.2 of the paper computes ground truth for PayM "via enumerating all
//! possible combinations of jurors", feasible only for small pools (the
//! paper uses 22 and 20 candidates). This module implements that
//! enumeration as a depth-first search over include/exclude decisions
//! with two structural optimisations that do not affect exactness:
//!
//! * **cost-sorted branch pruning** — candidates are visited in ascending
//!   cost order, so the moment the cheapest remaining candidate exceeds
//!   the residual budget the entire include-subtree is skipped;
//! * **incremental pmf stack** — each include extends the parent's
//!   carelessness distribution by one [`PoiBin::push`] (`O(n)`), so a
//!   subset's JER never costs more than `O(n)` on top of its parent.
//!
//! [`exact_paym_parallel`] splits the DFS over prefix assignments of the
//! first `K` candidates and fans the subtrees out over `std::thread`
//! scoped threads; sequential and parallel versions return bit-identical
//! results (same tree, deterministic tie-breaking).
//!
//! [`ExactPaym`] wraps either entry point as a
//! [`Solver`] so the service layer can dispatch
//! ground-truth solves through the same interface as the fast
//! heuristics.

use crate::error::JuryError;
use crate::jer::JerEngine;
use crate::juror::Juror;
use crate::problem::{Selection, SolverStats};
use crate::solver::{Solver, SolverScratch};
use jury_numeric::poibin::PoiBin;

/// Hard cap on pool size for exact enumeration: `2^26` subsets is already
/// ~10⁸ JER evaluations.
pub const EXACT_POOL_LIMIT: usize = 26;

/// Configuration for the exact solvers.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Refuse pools larger than this (≤ [`EXACT_POOL_LIMIT`]).
    pub max_pool: usize,
    /// Worker threads for [`exact_paym_parallel`] (0 = one per available
    /// core).
    pub threads: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self { max_pool: EXACT_POOL_LIMIT, threads: 0 }
    }
}

/// A candidate optimum during enumeration, ordered by
/// `(jer, cost, size, members)` so ties resolve deterministically.
#[derive(Debug, Clone)]
struct Best {
    jer: f64,
    cost: f64,
    members: Vec<usize>, // sorted pool indices
    evaluations: usize,
}

impl Best {
    fn none() -> Self {
        Self { jer: f64::INFINITY, cost: f64::INFINITY, members: vec![], evaluations: 0 }
    }

    fn consider(&mut self, jer: f64, cost: f64, members: &[usize]) {
        self.evaluations += 1;
        let better = jer < self.jer
            || (jer == self.jer
                && (cost < self.cost
                    || (cost == self.cost
                        && (members.len() < self.members.len()
                            || (members.len() == self.members.len()
                                && members < self.members.as_slice())))));
        if better {
            self.jer = jer;
            self.cost = cost;
            self.members = members.to_vec();
        }
    }

    fn merge(mut self, other: Best) -> Best {
        let evals = self.evaluations + other.evaluations;
        self.consider(other.jer, other.cost, &other.members);
        // consider() bumped the counter once; correct to the true total.
        self.evaluations = evals;
        self
    }
}

fn validate(pool: &[Juror], budget: f64, config: &ExactConfig) -> Result<Vec<usize>, JuryError> {
    if pool.is_empty() {
        return Err(JuryError::EmptyPool);
    }
    if budget.is_nan() || budget < 0.0 {
        return Err(JuryError::InvalidBudget(budget));
    }
    let limit = config.max_pool.min(EXACT_POOL_LIMIT);
    if pool.len() > limit {
        return Err(JuryError::PoolTooLargeForExact { size: pool.len(), limit });
    }
    // Ascending cost (ties by index) enables subtree pruning.
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by(|&a, &b| pool[a].cost.total_cmp(&pool[b].cost).then(a.cmp(&b)));
    if pool[order[0]].cost > budget {
        return Err(JuryError::NoFeasibleJury { budget });
    }
    Ok(order)
}

/// Mutable enumeration state shared along one DFS path.
///
/// `chosen` holds *pool indices* of included jurors (path order), `pmfs`
/// the matching carelessness distributions (`pmfs[k]` = distribution of
/// the first `k` chosen).
struct SearchState {
    chosen: Vec<usize>,
    pmfs: Vec<PoiBin>,
    best: Best,
}

impl SearchState {
    fn new(capacity: usize) -> Self {
        Self {
            chosen: Vec::with_capacity(capacity),
            pmfs: vec![PoiBin::empty()],
            best: Best::none(),
        }
    }

    /// Resets the path (keeps the incumbent best across subtree roots).
    fn reset_path(&mut self) {
        self.chosen.clear();
        self.pmfs.truncate(1);
    }

    /// Extends the path by including `juror` from `pool`.
    fn include(&mut self, pool: &[Juror], juror: usize) {
        let mut next = self.pmfs[self.chosen.len()].clone();
        next.push(pool[juror].epsilon());
        self.pmfs.truncate(self.chosen.len() + 1);
        self.pmfs.push(next);
        self.chosen.push(juror);
    }
}

/// DFS over include/exclude decisions for `order[idx..]`.
fn dfs(
    pool: &[Juror],
    order: &[usize],
    budget: f64,
    idx: usize,
    spent: f64,
    state: &mut SearchState,
) {
    // Leaf, or no remaining candidate fits the residual budget (costs are
    // ascending, so order[idx] is the cheapest remaining): the only
    // feasible completion is "take nothing more" — evaluate and stop.
    if idx == order.len() || spent + pool[order[idx]].cost > budget {
        if state.chosen.len() % 2 == 1 {
            let n = state.chosen.len();
            let jer = state.pmfs[n].tail(JerEngine::majority_threshold(n));
            let mut members = state.chosen.clone();
            members.sort_unstable();
            state.best.consider(jer, spent, &members);
        }
        return;
    }

    let juror = order[idx];
    // Include branch.
    state.include(pool, juror);
    dfs(pool, order, budget, idx + 1, spent + pool[juror].cost, state);
    state.chosen.pop();
    // Exclude branch.
    dfs(pool, order, budget, idx + 1, spent, state);
}

fn best_to_selection(best: Best, budget: f64) -> Result<Selection, JuryError> {
    if best.members.is_empty() {
        return Err(JuryError::NoFeasibleJury { budget });
    }
    Ok(Selection {
        members: best.members,
        jer: best.jer,
        total_cost: best.cost,
        stats: SolverStats {
            jer_evaluations: best.evaluations,
            pruned_by_bound: 0,
            candidates_considered: best.evaluations,
        },
    })
}

/// Sequential exact PayM solver: minimum-JER odd subset within budget.
///
/// Pass `budget = f64::MAX` for exact AltrM ground truth.
pub fn exact_paym(
    pool: &[Juror],
    budget: f64,
    config: &ExactConfig,
) -> Result<Selection, JuryError> {
    let order = validate(pool, budget, config)?;
    let mut state = SearchState::new(pool.len());
    dfs(pool, &order, budget, 0, 0.0, &mut state);
    best_to_selection(state.best, budget)
}

/// Parallel exact PayM solver (crossbeam-scoped threads). Returns exactly
/// the same selection as [`exact_paym`].
pub fn exact_paym_parallel(
    pool: &[Juror],
    budget: f64,
    config: &ExactConfig,
) -> Result<Selection, JuryError> {
    let order = validate(pool, budget, config)?;
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(4)
    } else {
        config.threads
    };
    // Fix the include/exclude pattern of the first K candidates; each
    // pattern is an independent subtree.
    let k = prefix_bits(order.len(), threads);
    let patterns = 1u32 << k;
    let counter = std::sync::atomic::AtomicU32::new(0);

    let merged = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let order = &order;
            let counter = &counter;
            handles.push(scope.spawn(move || {
                let mut state = SearchState::new(pool.len());
                loop {
                    let pattern = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if pattern >= patterns {
                        break;
                    }
                    // Materialise the prefix decisions; skip infeasible
                    // prefixes (budget exceeded part-way).
                    state.reset_path();
                    let mut spent = 0.0;
                    let mut feasible = true;
                    for (bit, &juror) in order[..k].iter().enumerate() {
                        if pattern >> bit & 1 == 1 {
                            spent += pool[juror].cost;
                            if spent > budget {
                                feasible = false;
                                break;
                            }
                            state.include(pool, juror);
                        }
                    }
                    if feasible {
                        dfs(pool, order, budget, k, spent, &mut state);
                    }
                }
                state.best
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("exact solver worker panicked"))
            .fold(Best::none(), Best::merge)
    });

    best_to_selection(merged, budget)
}

/// The exact solvers behind the [`Solver`] interface: exponential ground
/// truth with a budget (use `f64::MAX` for AltrM ground truth),
/// optionally fanning the search over threads.
#[derive(Debug, Clone, Copy)]
pub struct ExactPaym {
    /// Total payment budget.
    pub budget: f64,
    /// Enumeration limits and thread count.
    pub config: ExactConfig,
    /// Use the multi-threaded search ([`exact_paym_parallel`]) instead of
    /// the sequential one — same selection either way.
    pub parallel: bool,
}

impl ExactPaym {
    /// Sequential exact solver with default limits.
    pub fn with_budget(budget: f64) -> Self {
        Self { budget, config: ExactConfig::default(), parallel: false }
    }
}

impl Solver for ExactPaym {
    fn name(&self) -> &'static str {
        "exact-paym"
    }

    /// The DFS keeps an incremental pmf stack whose depth varies with the
    /// path, so it owns its state rather than borrowing the flat scratch.
    fn solve(
        &mut self,
        pool: &[Juror],
        _scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError> {
        if self.parallel {
            exact_paym_parallel(pool, self.budget, &self.config)
        } else {
            exact_paym(pool, self.budget, &self.config)
        }
    }
}

/// Number of leading candidates whose include/exclude pattern is fixed
/// per parallel task: enough patterns to keep `threads` busy (≥ 4 tasks
/// per thread) without splitting past the pool size.
fn prefix_bits(n: usize, threads: usize) -> usize {
    let want = (threads * 4).next_power_of_two().trailing_zeros() as usize;
    want.min(n.saturating_sub(1)).min(12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::{pool_from_rates, pool_from_rates_and_costs};
    use crate::paym::{PayAlg, PayConfig};

    fn brute_force_reference(pool: &[Juror], budget: f64) -> Option<(f64, Vec<usize>)> {
        let n = pool.len();
        let mut best: Option<(f64, f64, Vec<usize>)> = None;
        for mask in 1u32..(1 << n) {
            if mask.count_ones() % 2 == 0 {
                continue;
            }
            let members: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            let cost: f64 = members.iter().map(|&i| pool[i].cost).sum();
            if cost > budget {
                continue;
            }
            let eps: Vec<f64> = members.iter().map(|&i| pool[i].epsilon()).collect();
            let jer = JerEngine::DynamicProgramming.jer(&eps);
            let better = match &best {
                None => true,
                Some((bj, bc, bm)) => {
                    jer < *bj
                        || (jer == *bj
                            && (cost < *bc
                                || (cost == *bc
                                    && (members.len() < bm.len()
                                        || (members.len() == bm.len() && &members < bm)))))
                }
            };
            if better {
                best = Some((jer, cost, members));
            }
        }
        best.map(|(j, _, m)| (j, m))
    }

    #[test]
    fn matches_naive_bitmask_reference() {
        let pool = pool_from_rates_and_costs(&[
            (0.1, 0.2),
            (0.2, 0.2),
            (0.2, 0.3),
            (0.3, 0.4),
            (0.3, 0.65),
            (0.4, 0.05),
            (0.4, 0.05),
        ])
        .unwrap();
        for budget in [0.05, 0.3, 0.5, 0.8, 1.0, 1.85, 5.0] {
            let exact = exact_paym(&pool, budget, &ExactConfig::default()).unwrap();
            let (ref_jer, ref_members) = brute_force_reference(&pool, budget).unwrap();
            assert!((exact.jer - ref_jer).abs() < 1e-12, "budget {budget}");
            assert_eq!(exact.members, ref_members, "budget {budget}");
        }
    }

    #[test]
    fn altruism_ground_truth_finds_table2_optimum() {
        let pool = pool_from_rates(&[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4]).unwrap();
        let sel = exact_paym(&pool, f64::MAX, &ExactConfig::default()).unwrap();
        assert_eq!(sel.members, vec![0, 1, 2, 3, 4]);
        assert!((sel.jer - 0.07036).abs() < 1e-12);
    }

    #[test]
    fn parallel_equals_sequential() {
        let pool = pool_from_rates_and_costs(&[
            (0.15, 0.1),
            (0.25, 0.3),
            (0.35, 0.05),
            (0.2, 0.4),
            (0.45, 0.02),
            (0.3, 0.15),
            (0.1, 0.6),
            (0.4, 0.08),
            (0.22, 0.2),
            (0.33, 0.12),
            (0.28, 0.25),
        ])
        .unwrap();
        for budget in [0.1, 0.35, 0.7, 1.4] {
            let seq = exact_paym(&pool, budget, &ExactConfig::default()).unwrap();
            for threads in [1, 2, 4, 7] {
                let par = exact_paym_parallel(
                    &pool,
                    budget,
                    &ExactConfig { threads, ..Default::default() },
                )
                .unwrap();
                assert_eq!(par.members, seq.members, "budget {budget} threads {threads}");
                assert!((par.jer - seq.jer).abs() < 1e-12);
                assert_eq!(par.stats.jer_evaluations, seq.stats.jer_evaluations);
            }
        }
    }

    #[test]
    fn exact_never_worse_than_greedy() {
        let pool = pool_from_rates_and_costs(&[
            (0.12, 0.3),
            (0.18, 0.22),
            (0.25, 0.15),
            (0.3, 0.1),
            (0.35, 0.07),
            (0.42, 0.03),
            (0.2, 0.28),
            (0.15, 0.4),
        ])
        .unwrap();
        for budget in [0.1, 0.25, 0.5, 0.75, 1.0] {
            let Ok(greedy) = PayAlg::solve(&pool, budget, &PayConfig::default()) else {
                continue;
            };
            let exact = exact_paym(&pool, budget, &ExactConfig::default()).unwrap();
            assert!(
                exact.jer <= greedy.jer + 1e-12,
                "budget {budget}: exact {} > greedy {}",
                exact.jer,
                greedy.jer
            );
        }
    }

    #[test]
    fn rejects_oversized_pools() {
        let rates = vec![0.3; 30];
        let pool = pool_from_rates(&rates).unwrap();
        assert!(matches!(
            exact_paym(&pool, 1.0, &ExactConfig::default()),
            Err(JuryError::PoolTooLargeForExact { size: 30, .. })
        ));
        // A stricter custom limit also applies.
        let small = pool_from_rates(&[0.3; 10]).unwrap();
        assert!(matches!(
            exact_paym(&small, 1.0, &ExactConfig { max_pool: 5, threads: 0 }),
            Err(JuryError::PoolTooLargeForExact { size: 10, limit: 5 })
        ));
    }

    #[test]
    fn error_cases() {
        assert_eq!(exact_paym(&[], 1.0, &ExactConfig::default()), Err(JuryError::EmptyPool));
        let pool = pool_from_rates_and_costs(&[(0.2, 0.5)]).unwrap();
        assert_eq!(
            exact_paym(&pool, 0.1, &ExactConfig::default()),
            Err(JuryError::NoFeasibleJury { budget: 0.1 })
        );
        assert!(matches!(
            exact_paym(&pool, -1.0, &ExactConfig::default()),
            Err(JuryError::InvalidBudget(_))
        ));
    }

    #[test]
    fn budget_pruning_reduces_evaluations() {
        let pool = pool_from_rates_and_costs(&[
            (0.1, 0.5),
            (0.2, 0.5),
            (0.3, 0.5),
            (0.4, 0.5),
            (0.25, 0.5),
            (0.35, 0.5),
        ])
        .unwrap();
        let tight = exact_paym(&pool, 0.5, &ExactConfig::default()).unwrap();
        let loose = exact_paym(&pool, 3.0, &ExactConfig::default()).unwrap();
        assert!(tight.stats.jer_evaluations < loose.stats.jer_evaluations);
        assert_eq!(tight.size(), 1); // only single jurors affordable
    }

    #[test]
    fn prefix_bits_is_sane() {
        assert_eq!(prefix_bits(1, 8), 0);
        assert!(prefix_bits(20, 8) >= 5);
        assert!(prefix_bits(20, 8) <= 12);
        assert!(prefix_bits(6, 64) <= 5);
    }
}
