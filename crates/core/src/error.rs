//! Error type for jury-selection operations.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong constructing juries or running solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum JuryError {
    /// An individual error rate was outside the open interval `(0, 1)`
    /// required by Definition 4.
    InvalidErrorRate(f64),
    /// A juror cost/payment requirement was negative or not finite.
    InvalidCost(f64),
    /// A jury must have an odd number of members for majority voting to
    /// produce a clear answer (§2.1.1).
    EvenJurySize(usize),
    /// A jury must have at least one member.
    EmptyJury,
    /// A voting's ballot count differs from the jury size.
    VotingSizeMismatch {
        /// Size of the jury being voted.
        expected: usize,
        /// Number of ballots supplied.
        actual: usize,
    },
    /// The candidate pool is empty but a jury was requested.
    EmptyPool,
    /// Under PayM no single candidate fits the budget, so no jury exists.
    NoFeasibleJury {
        /// The budget that could not accommodate any juror.
        budget: f64,
    },
    /// The given budget is negative or not finite.
    InvalidBudget(f64),
    /// The exact solver refuses pools beyond its exponential-cost limit.
    PoolTooLargeForExact {
        /// Pool size requested.
        size: usize,
        /// Maximum size supported.
        limit: usize,
    },
}

impl fmt::Display for JuryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidErrorRate(e) => {
                write!(f, "individual error rate must lie strictly in (0,1), got {e}")
            }
            Self::InvalidCost(c) => {
                write!(f, "juror cost must be finite and non-negative, got {c}")
            }
            Self::EvenJurySize(n) => {
                write!(f, "majority voting requires an odd jury size, got {n}")
            }
            Self::EmptyJury => write!(f, "a jury needs at least one juror"),
            Self::VotingSizeMismatch { expected, actual } => {
                write!(f, "voting has {actual} ballots for a jury of size {expected}")
            }
            Self::EmptyPool => write!(f, "candidate pool is empty"),
            Self::NoFeasibleJury { budget } => {
                write!(f, "no candidate juror is affordable within budget {budget}")
            }
            Self::InvalidBudget(b) => {
                write!(f, "budget must be finite and non-negative, got {b}")
            }
            Self::PoolTooLargeForExact { size, limit } => {
                write!(
                    f,
                    "exact enumeration is exponential: pool of {size} exceeds the limit of {limit}"
                )
            }
        }
    }
}

impl Error for JuryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(JuryError, &str)> = vec![
            (JuryError::InvalidErrorRate(1.5), "error rate"),
            (JuryError::InvalidCost(-1.0), "cost"),
            (JuryError::EvenJurySize(4), "odd"),
            (JuryError::EmptyJury, "at least one"),
            (JuryError::VotingSizeMismatch { expected: 3, actual: 2 }, "ballots"),
            (JuryError::EmptyPool, "empty"),
            (JuryError::NoFeasibleJury { budget: 0.1 }, "affordable"),
            (JuryError::InvalidBudget(f64::NAN), "budget"),
            (JuryError::PoolTooLargeForExact { size: 40, limit: 26 }, "exponential"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn Error) {}
        takes_error(&JuryError::EmptyJury);
    }

    #[test]
    fn equality() {
        assert_eq!(JuryError::EvenJurySize(2), JuryError::EvenJurySize(2));
        assert_ne!(JuryError::EvenJurySize(2), JuryError::EvenJurySize(4));
    }
}
