//! The Jury Selection Problem facade (Definition 9).
//!
//! Couples a candidate pool with a [`CrowdModel`] and dispatches to the
//! model's solver: [`AltrAlg`] for AltrM (exact, by
//! Lemma 3) and [`PayAlg`] for PayM (the greedy
//! heuristic — the problem is NP-hard, Lemma 4). The exact exponential
//! solver is also reachable for small pools via
//! [`JurySelectionProblem::solve_exact`].

use crate::altr::{AltrAlg, AltrConfig};
use crate::error::JuryError;
use crate::exact::{exact_paym, ExactConfig};
use crate::juror::Juror;
use crate::model::CrowdModel;
use crate::paym::{PayAlg, PayConfig};

/// Counters describing the work a solver performed — the quantities the
/// paper's efficiency figures (3b, 3g) are about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Candidate juries whose JER was computed exactly.
    pub jer_evaluations: usize,
    /// Candidate juries skipped thanks to the Lemma-2 lower bound.
    pub pruned_by_bound: usize,
    /// Candidate juries examined in total.
    pub candidates_considered: usize,
}

/// A solver's answer: which pool members form the jury and how good it is.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Indices **into the candidate pool slice** (not juror ids), sorted
    /// ascending. Map through the pool to recover ids or costs.
    pub members: Vec<usize>,
    /// The selected jury's Jury Error Rate.
    pub jer: f64,
    /// Total payment requirement of the selected jury.
    pub total_cost: f64,
    /// Work counters.
    pub stats: SolverStats,
}

impl Selection {
    /// Jury size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Resolves member indices to the jurors of `pool`.
    ///
    /// # Panics
    /// Panics if `pool` is not the pool this selection was made from
    /// (indices out of range).
    pub fn jurors<'a>(&self, pool: &'a [Juror]) -> Vec<&'a Juror> {
        self.members.iter().map(|&i| &pool[i]).collect()
    }

    /// Resolves member indices to juror ids.
    pub fn ids(&self, pool: &[Juror]) -> Vec<u32> {
        self.members.iter().map(|&i| pool[i].id).collect()
    }
}

/// A fully-specified JSP instance: pool + crowdsourcing model
/// (Definition 9).
#[derive(Debug, Clone)]
pub struct JurySelectionProblem {
    pool: Vec<Juror>,
    model: CrowdModel,
}

impl JurySelectionProblem {
    /// JSP under the altruism model.
    pub fn altruism(pool: Vec<Juror>) -> Self {
        Self { pool, model: CrowdModel::Altruism }
    }

    /// JSP under the pay-as-you-go model.
    ///
    /// # Errors
    /// [`JuryError::InvalidBudget`] for negative/non-finite budgets.
    pub fn pay_as_you_go(pool: Vec<Juror>, budget: f64) -> Result<Self, JuryError> {
        Ok(Self { pool, model: CrowdModel::pay_as_you_go(budget)? })
    }

    /// The candidate pool.
    pub fn pool(&self) -> &[Juror] {
        &self.pool
    }

    /// The governing model.
    pub fn model(&self) -> CrowdModel {
        self.model
    }

    /// Solves with the model's default algorithm: `AltrALG` (exact) for
    /// AltrM, `PayALG` (greedy heuristic) for PayM.
    pub fn solve(&self) -> Result<Selection, JuryError> {
        match self.model {
            CrowdModel::Altruism => AltrAlg::solve(&self.pool, &AltrConfig::default()),
            CrowdModel::PayAsYouGo { budget } => {
                PayAlg::solve(&self.pool, budget, &PayConfig::default())
            }
        }
    }

    /// Solves by exhaustive enumeration — exponential, for ground truth on
    /// small pools (§5.1.2's "OPT").
    pub fn solve_exact(&self) -> Result<Selection, JuryError> {
        let budget = self.model.budget().unwrap_or(f64::MAX);
        exact_paym(&self.pool, budget, &ExactConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::{pool_from_rates, pool_from_rates_and_costs};

    #[test]
    fn altruism_solves_motivating_example() {
        let pool = pool_from_rates(&[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4]).unwrap();
        let sel = JurySelectionProblem::altruism(pool).solve().unwrap();
        assert_eq!(sel.members, vec![0, 1, 2, 3, 4]);
        assert!((sel.jer - 0.07036).abs() < 1e-9);
        assert_eq!(sel.size(), 5);
    }

    #[test]
    fn paym_respects_budget_from_motivating_example() {
        // Figure 1 costs: A..G ask 0.2, 0.2, 0.3, 0.4, 0.65, 0.05, 0.05.
        let pool = pool_from_rates_and_costs(&[
            (0.1, 0.2),
            (0.2, 0.2),
            (0.2, 0.3),
            (0.3, 0.4),
            (0.3, 0.65),
            (0.4, 0.05),
            (0.4, 0.05),
        ])
        .unwrap();
        let problem = JurySelectionProblem::pay_as_you_go(pool.clone(), 1.0).unwrap();
        let sel = problem.solve().unwrap();
        assert!(sel.total_cost <= 1.0 + 1e-12);
        assert!(sel.size() % 2 == 1);
        // D+E alone cost 1.05 > B: they cannot both be in.
        let chosen: Vec<usize> = sel.members.clone();
        assert!(!(chosen.contains(&3) && chosen.contains(&4)));
    }

    #[test]
    fn selection_resolvers() {
        let pool = pool_from_rates(&[0.3, 0.1, 0.2]).unwrap();
        let sel = JurySelectionProblem::altruism(pool.clone()).solve().unwrap();
        let ids = sel.ids(&pool);
        let jurors = sel.jurors(&pool);
        assert_eq!(ids.len(), jurors.len());
        for (&id, j) in ids.iter().zip(&jurors) {
            assert_eq!(id, j.id);
        }
    }

    #[test]
    fn empty_pool_errors() {
        let p = JurySelectionProblem::altruism(vec![]);
        assert_eq!(p.solve(), Err(JuryError::EmptyPool));
    }

    #[test]
    fn invalid_budget_rejected_up_front() {
        let pool = pool_from_rates(&[0.1]).unwrap();
        assert!(JurySelectionProblem::pay_as_you_go(pool, -1.0).is_err());
    }

    #[test]
    fn exact_matches_altr_on_small_pool() {
        let pool = pool_from_rates(&[0.15, 0.3, 0.45, 0.2, 0.35]).unwrap();
        let problem = JurySelectionProblem::altruism(pool);
        let fast = problem.solve().unwrap();
        let exact = problem.solve_exact().unwrap();
        assert!((fast.jer - exact.jer).abs() < 1e-12);
    }
}
