//! Selection-quality metrics.
//!
//! Figure 3(h) of the paper reports the *precision* and *recall* of the
//! greedy PayALG selection against the enumerated ground-truth optimum:
//! precision = |S ∩ T| / |S|, recall = |S ∩ T| / |T| where `S` is the
//! selected jury and `T` the optimal one.

use std::collections::HashSet;

/// Precision and recall of a selection versus ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of selected members that are in the ground truth
    /// (1.0 when nothing was selected — vacuously no false positives).
    pub precision: f64,
    /// Fraction of ground-truth members that were selected
    /// (1.0 when the ground truth is empty).
    pub recall: f64,
}

impl PrecisionRecall {
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let s = self.precision + self.recall;
        if s == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / s
        }
    }
}

/// Computes precision/recall of `selected` against `truth` (both are sets
/// of pool indices or juror ids; duplicates are ignored).
pub fn precision_recall(selected: &[usize], truth: &[usize]) -> PrecisionRecall {
    let sel: HashSet<usize> = selected.iter().copied().collect();
    let tru: HashSet<usize> = truth.iter().copied().collect();
    let hits = sel.intersection(&tru).count() as f64;
    PrecisionRecall {
        precision: if sel.is_empty() { 1.0 } else { hits / sel.len() as f64 },
        recall: if tru.is_empty() { 1.0 } else { hits / tru.len() as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        let pr = precision_recall(&[1, 2, 3], &[3, 2, 1]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f1(), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        let pr = precision_recall(&[1, 2], &[3, 4]);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.f1(), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // selected {1,2,3,4}, truth {3,4,5}: hits 2.
        let pr = precision_recall(&[1, 2, 3, 4], &[3, 4, 5]);
        assert!((pr.precision - 0.5).abs() < 1e-15);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-15);
        let f1 = pr.f1();
        assert!((f1 - (2.0 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0))).abs() < 1e-15);
    }

    #[test]
    fn oversized_selection_hurts_precision_only() {
        let pr = precision_recall(&[1, 2, 3, 4, 5], &[1, 2, 3]);
        assert!((pr.precision - 0.6).abs() < 1e-15);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn undersized_selection_hurts_recall_only() {
        let pr = precision_recall(&[1], &[1, 2, 3]);
        assert_eq!(pr.precision, 1.0);
        assert!((pr.recall - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(precision_recall(&[], &[]), PrecisionRecall { precision: 1.0, recall: 1.0 });
        let pr = precision_recall(&[], &[1]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
        let pr = precision_recall(&[1], &[]);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn duplicates_are_ignored() {
        let pr = precision_recall(&[1, 1, 2], &[1, 2, 2]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
    }
}
