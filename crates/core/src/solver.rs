//! The [`Solver`] trait: one interface over every JSP algorithm.
//!
//! The paper presents AltrALG, PayALG and the exact enumeration as
//! unrelated procedures. A serving layer (the `jury-service` crate)
//! needs them interchangeable *and* cheap to call repeatedly, so this
//! module gives them a common shape:
//!
//! * a solver is a small value holding its configuration (strategy,
//!   engine, budget) — construct once, reuse for many pools;
//! * every per-call working buffer lives in a [`SolverScratch`] owned by
//!   the caller (one per worker thread), so a warm solve performs no
//!   heap allocation beyond the returned [`Selection`];
//! * results are bit-identical to the free-function entry points
//!   (`AltrAlg::solve`, `PayAlg::solve`, `exact_paym`), which now share
//!   the same scratch-threaded internals.
//!
//! ```
//! use jury_core::juror::pool_from_rates;
//! use jury_core::prelude::*;
//! use jury_core::solver::{Solver, SolverScratch};
//!
//! let pool = pool_from_rates(&[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4]).unwrap();
//! let mut scratch = SolverScratch::new();
//! let mut solvers: Vec<Box<dyn Solver>> = vec![
//!     Box::new(AltrAlg::default()),
//!     Box::new(PayAlg::new(1.0, PayConfig::default())),
//! ];
//! for solver in &mut solvers {
//!     let selection = solver.solve(&pool, &mut scratch).unwrap();
//!     assert!(selection.size() % 2 == 1);
//! }
//! ```

use crate::error::JuryError;
use crate::jer::JerScratch;
use crate::juror::Juror;
use crate::problem::Selection;
use jury_numeric::poibin::PoiBin;

/// Caller-owned working memory shared by all solvers.
///
/// Buffers grow to the workload's steady-state sizes on first use and
/// are reused afterwards; dropping the scratch releases everything. A
/// scratch must not be shared between threads concurrently — give each
/// worker its own.
///
/// The same `pmf`/`trial` pair also backs the budget-staircase miss path
/// ([`PayAlg::solve_staircase`](crate::paym::PayAlg::solve_staircase)):
/// a staircase miss runs one ordinary scan through these buffers, so a
/// serving layer needs no extra per-worker state to adopt the staircase.
#[derive(Debug, Clone, Default)]
pub struct SolverScratch {
    /// Pool indices in the solver's visit order.
    pub(crate) order: Vec<usize>,
    /// Error rates aligned with `order`.
    pub(crate) eps: Vec<f64>,
    /// Incrementally-grown carelessness pmf.
    pub(crate) pmf: PoiBin,
    /// Trial pmf for tentative enlargements (PayALG's pair test).
    pub(crate) trial: PoiBin,
    /// JER-engine working buffers.
    pub(crate) jer: JerScratch,
    /// Per-odd-size lower bounds of `AltrAlg::solve_pruned`'s sweep.
    pub(crate) bounds: Vec<f64>,
}

impl SolverScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The candidate visit order left by the most recent solve
    /// (ε-ascending after an `AltrAlg` solve, greedy order after a
    /// `PayAlg` solve). Serving layers snapshot this into their caches
    /// instead of re-sorting the pool.
    pub fn last_order(&self) -> &[usize] {
        &self.order
    }

    /// The ε values aligned with [`SolverScratch::last_order`] after an
    /// `AltrAlg` solve.
    pub fn last_sorted_eps(&self) -> &[f64] {
        &self.eps
    }
}

/// A configured jury-selection algorithm.
///
/// Implemented by [`AltrAlg`](crate::altr::AltrAlg) (exact under AltrM),
/// [`PayAlg`](crate::paym::PayAlg) (greedy under PayM) and
/// [`ExactPaym`](crate::exact::ExactPaym) (exponential ground truth).
/// `&mut self` lets stateful solvers cache across calls; the provided
/// implementations keep all reusable state in the scratch instead.
pub trait Solver {
    /// A short stable identifier (used in service stats and reports).
    fn name(&self) -> &'static str;

    /// Selects a jury from `pool`, using `scratch` for working memory.
    ///
    /// Member indices in the returned [`Selection`] refer to positions
    /// in `pool`.
    fn solve(
        &mut self,
        pool: &[Juror],
        scratch: &mut SolverScratch,
    ) -> Result<Selection, JuryError>;
}

/// The ε-ascending total order over pool positions: `ε` by `total_cmp`,
/// ties by position. Strict for distinct positions, which is what makes a
/// K-way merge of per-shard sorted runs reproduce the global sort
/// permutation-for-permutation (see [`crate::merge`]).
#[inline]
pub fn eps_cmp(pool: &[Juror], a: usize, b: usize) -> std::cmp::Ordering {
    pool[a].epsilon().total_cmp(&pool[b].epsilon()).then(a.cmp(&b))
}

/// Pool indices sorted ascending by ε (ties by index for determinism),
/// written into `order` — the shared first step of AltrALG and the
/// fixed-size selector; public so serving layers can cache the order per
/// pool.
pub fn sorted_order_into(pool: &[Juror], order: &mut Vec<usize>) {
    order.clear();
    order.extend(0..pool.len());
    order.sort_by(|&a, &b| eps_cmp(pool, a, b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::altr::{AltrAlg, AltrConfig};
    use crate::exact::ExactPaym;
    use crate::juror::{pool_from_rates, pool_from_rates_and_costs};
    use crate::paym::{PayAlg, PayConfig};

    #[test]
    fn trait_objects_dispatch_all_solvers() {
        let pool = pool_from_rates_and_costs(&[
            (0.1, 0.2),
            (0.2, 0.2),
            (0.2, 0.3),
            (0.3, 0.4),
            (0.3, 0.65),
            (0.4, 0.05),
            (0.4, 0.05),
        ])
        .unwrap();
        let mut scratch = SolverScratch::new();
        let mut solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(AltrAlg::default()),
            Box::new(AltrAlg::new(AltrConfig::paper_with_bound())),
            Box::new(PayAlg::new(1.0, PayConfig::default())),
            Box::new(ExactPaym::with_budget(1.0)),
        ];
        for solver in &mut solvers {
            let sel = solver.solve(&pool, &mut scratch).unwrap();
            assert!(sel.size() % 2 == 1, "{}", solver.name());
            assert!(!solver.name().is_empty());
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // Run a mixed sequence of solves through ONE scratch and compare
        // each against a fresh-scratch run: warm buffers must never
        // change any result.
        let pools: Vec<Vec<crate::juror::Juror>> = vec![
            pool_from_rates(&[0.4, 0.3, 0.1, 0.4, 0.2, 0.3, 0.2]).unwrap(),
            pool_from_rates(&[0.45, 0.48, 0.33]).unwrap(),
            pool_from_rates(&(0..80).map(|i| 0.05 + (i as f64) / 100.0).collect::<Vec<_>>())
                .unwrap(),
        ];
        let mut warm = SolverScratch::new();
        for _ in 0..3 {
            for pool in &pools {
                let mut altr = AltrAlg::default();
                let a = altr.solve(pool, &mut warm).unwrap();
                let b = altr.solve(pool, &mut SolverScratch::new()).unwrap();
                assert_eq!(a, b);
                let mut pay = PayAlg::new(f64::MAX, PayConfig::default());
                let a = pay.solve(pool, &mut warm).unwrap();
                let b = pay.solve(pool, &mut SolverScratch::new()).unwrap();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn sorted_order_reuses_and_sorts() {
        let pool = pool_from_rates(&[0.4, 0.1, 0.3, 0.1]).unwrap();
        let mut order = vec![99; 32];
        sorted_order_into(&pool, &mut order);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }
}
