//! K-way merging of per-shard sorted orders.
//!
//! The serving layer's sharded pools (`jury-service`) keep one ε-sorted
//! order and one greedy order *per shard*; the global orders the solvers
//! consume are rebuilt by merging those sorted runs. Merging is where the
//! sharded architecture's bit-identity guarantee comes from: both
//! [`sorted_order_into`](crate::solver::sorted_order_into) and
//! [`PayAlg::greedy_order_into`](crate::paym::PayAlg::greedy_order_into)
//! sort under **total** orders whose final tie-break is the pool index, so
//! every comparison between two distinct indices is strictly ordered. A
//! sequence sorted under such an order is *unique* — any algorithm that
//! produces a sorted permutation (one global sort, or a K-way merge of
//! per-shard sorted runs) produces the **same** permutation. No floating
//! point is re-evaluated by the merge, only compared, so downstream scans
//! see bit-identical inputs.
//!
//! The merge runs in `O(N log K)` comparisons over a K-entry binary
//! heap of run heads — each element is written exactly once into the
//! output, with no intermediate buffers. Rebuilding a mutated pool's
//! global order costs one shard re-sort (`O((N/K) log(N/K))`) plus this
//! merge, instead of a full `O(N log N)` sort over jurors the mutation
//! never touched.

use std::cmp::Ordering;

/// Merges `K` individually-sorted index runs into one sorted sequence,
/// written into `out` (cleared first).
///
/// `cmp` must be a **total, strict** order over the indices appearing in
/// `runs`: for any two distinct indices it returns `Less` or `Greater`,
/// never `Equal` (use the pool index as the final tie-break, as
/// [`sorted_order_into`](crate::solver::sorted_order_into) does). Under
/// that precondition the output equals what a single global sort under
/// `cmp` would produce, permutation-for-permutation.
///
/// Runs may be empty; an empty `runs` slice yields an empty output.
pub fn kway_merge_by<F>(runs: &[&[usize]], mut cmp: F, out: &mut Vec<usize>)
where
    F: FnMut(usize, usize) -> Ordering,
{
    out.clear();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    out.reserve(total);
    match runs.len() {
        0 => {}
        1 => out.extend_from_slice(runs[0]),
        2 => merge_two(runs[0], runs[1], &mut cmp, out),
        _ => merge_heap(runs, &mut cmp, out),
    }
}

/// Two-way merge of sorted runs under a strict total order.
fn merge_two<F>(a: &[usize], b: &[usize], cmp: &mut F, out: &mut Vec<usize>)
where
    F: FnMut(usize, usize) -> Ordering,
{
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(a[i], b[j]) == Ordering::Less {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// K-way merge via a binary min-heap of run ids keyed by their current
/// heads: `O(K)` auxiliary state, `O(log K)` comparisons per element,
/// each element written straight into `out`. The strict total order
/// guarantees distinct heads, so no tie-break is needed.
fn merge_heap<F>(runs: &[&[usize]], cmp: &mut F, out: &mut Vec<usize>)
where
    F: FnMut(usize, usize) -> Ordering,
{
    let mut pos = vec![0usize; runs.len()];
    let mut heap: Vec<usize> = (0..runs.len()).filter(|&r| !runs[r].is_empty()).collect();

    fn sift_down<F>(heap: &mut [usize], runs: &[&[usize]], pos: &[usize], cmp: &mut F, mut i: usize)
    where
        F: FnMut(usize, usize) -> Ordering,
    {
        let head = |r: usize| runs[r][pos[r]];
        loop {
            let mut smallest = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < heap.len()
                    && cmp(head(heap[child]), head(heap[smallest])) == Ordering::Less
                {
                    smallest = child;
                }
            }
            if smallest == i {
                return;
            }
            heap.swap(i, smallest);
            i = smallest;
        }
    }

    for i in (0..heap.len() / 2).rev() {
        sift_down(&mut heap, runs, &pos, cmp, i);
    }
    while let Some(&run) = heap.first() {
        out.push(runs[run][pos[run]]);
        pos[run] += 1;
        if pos[run] == runs[run].len() {
            let last = heap.len() - 1;
            heap.swap(0, last);
            heap.pop();
        }
        sift_down(&mut heap, runs, &pos, cmp, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::pool_from_rates_and_costs;
    use crate::paym::PayAlg;
    use crate::solver::{eps_cmp, sorted_order_into};

    /// Deterministic xorshift pools with duplicate rates (tie-breaks
    /// matter) and varied costs.
    fn pool(n: usize, seed: u64) -> Vec<crate::juror::Juror> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let quotes: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                // Quantised rates so equal keys occur often.
                let e = 0.05 + (next() * 8.0).floor() / 10.0;
                let c = (next() * 4.0).floor() / 4.0;
                (e, c)
            })
            .collect();
        pool_from_rates_and_costs(&quotes).unwrap()
    }

    /// Round-robin partition into `k` runs, each sorted by `cmp`.
    fn partitioned_runs<F>(n: usize, k: usize, mut cmp: F) -> Vec<Vec<usize>>
    where
        F: FnMut(usize, usize) -> Ordering,
    {
        let mut runs: Vec<Vec<usize>> = vec![Vec::new(); k];
        for i in 0..n {
            runs[i % k].push(i);
        }
        for run in &mut runs {
            run.sort_by(|&a, &b| cmp(a, b));
        }
        runs
    }

    #[test]
    fn merge_of_eps_runs_equals_global_sort() {
        for &n in &[0usize, 1, 2, 7, 33, 100] {
            for &k in &[1usize, 2, 3, 7, 16] {
                let jurors = pool(n, 0x9e3779b97f4a7c15 ^ (n as u64) << 8 ^ k as u64);
                let runs = partitioned_runs(n, k, |a, b| eps_cmp(&jurors, a, b));
                let run_refs: Vec<&[usize]> = runs.iter().map(Vec::as_slice).collect();
                let mut merged = Vec::new();
                kway_merge_by(&run_refs, |a, b| eps_cmp(&jurors, a, b), &mut merged);
                let mut global = Vec::new();
                sorted_order_into(&jurors, &mut global);
                assert_eq!(merged, global, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn merge_of_greedy_runs_equals_global_sort() {
        for &n in &[1usize, 5, 29, 64] {
            for &k in &[2usize, 5, 16] {
                let jurors = pool(n, 0xdeadbeefcafe ^ (n * 131 + k) as u64);
                let runs = partitioned_runs(n, k, |a, b| PayAlg::greedy_cmp(&jurors, a, b));
                let run_refs: Vec<&[usize]> = runs.iter().map(Vec::as_slice).collect();
                let mut merged = Vec::new();
                kway_merge_by(&run_refs, |a, b| PayAlg::greedy_cmp(&jurors, a, b), &mut merged);
                let mut global = Vec::new();
                PayAlg::greedy_order_into(&jurors, &mut global);
                assert_eq!(merged, global, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn empty_and_skewed_runs() {
        let mut out = vec![7usize; 4];
        kway_merge_by(&[], |a, b| a.cmp(&b), &mut out);
        assert!(out.is_empty());
        // One run empty, one holding everything.
        kway_merge_by(&[&[], &[0, 1, 2], &[]], |a, b| a.cmp(&b), &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        // Output buffer is reused, not appended to.
        kway_merge_by(&[&[3], &[1], &[2], &[0]], |a, b| a.cmp(&b), &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }
}
