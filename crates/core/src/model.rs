//! Crowdsourcing models (§2.2).
//!
//! [`CrowdModel::Altruism`] (Definition 7) allows any jury; workers
//! participate out of interest or obligation. [`CrowdModel::PayAsYouGo`]
//! (Definition 8) attaches a payment requirement to every juror and only
//! allows juries whose total payment fits a budget.

use crate::error::JuryError;
use crate::jury::Jury;

/// Which crowdsourcing model governs jury feasibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrowdModel {
    /// Altruism Jurors Model — every jury is allowed (Definition 7).
    Altruism,
    /// Pay-as-you-go Model — a jury is allowed iff its total payment is at
    /// most `budget` (Definition 8).
    PayAsYouGo {
        /// Total payment budget `B ≥ 0`.
        budget: f64,
    },
}

impl CrowdModel {
    /// Validated PayM constructor.
    pub fn pay_as_you_go(budget: f64) -> Result<Self, JuryError> {
        if !budget.is_finite() || budget < 0.0 {
            return Err(JuryError::InvalidBudget(budget));
        }
        Ok(Self::PayAsYouGo { budget })
    }

    /// Whether `jury` is *allowed* under this model (paper's terminology
    /// for feasible).
    pub fn allows(&self, jury: &Jury) -> bool {
        match *self {
            CrowdModel::Altruism => true,
            CrowdModel::PayAsYouGo { budget } => jury.total_cost() <= budget + 1e-12,
        }
    }

    /// The budget, if this is PayM.
    pub fn budget(&self) -> Option<f64> {
        match *self {
            CrowdModel::Altruism => None,
            CrowdModel::PayAsYouGo { budget } => Some(budget),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::juror::{ErrorRate, Juror};

    fn jury_with_costs(costs: &[f64]) -> Jury {
        let e = ErrorRate::new(0.2).unwrap();
        Jury::new(costs.iter().enumerate().map(|(i, &c)| Juror::new(i as u32, e, c)).collect())
            .unwrap()
    }

    #[test]
    fn altruism_allows_everything() {
        let jury = jury_with_costs(&[100.0, 200.0, 300.0]);
        assert!(CrowdModel::Altruism.allows(&jury));
        assert_eq!(CrowdModel::Altruism.budget(), None);
    }

    #[test]
    fn paym_enforces_budget() {
        let jury = jury_with_costs(&[0.3, 0.3, 0.3]);
        let tight = CrowdModel::pay_as_you_go(0.5).unwrap();
        let loose = CrowdModel::pay_as_you_go(1.0).unwrap();
        assert!(!tight.allows(&jury));
        assert!(loose.allows(&jury));
        assert_eq!(loose.budget(), Some(1.0));
    }

    #[test]
    fn paym_budget_boundary_is_inclusive() {
        let jury = jury_with_costs(&[0.25, 0.25, 0.5]);
        let exact = CrowdModel::pay_as_you_go(1.0).unwrap();
        assert!(exact.allows(&jury));
    }

    #[test]
    fn rejects_bad_budgets() {
        assert!(CrowdModel::pay_as_you_go(-0.1).is_err());
        assert!(CrowdModel::pay_as_you_go(f64::NAN).is_err());
        assert!(CrowdModel::pay_as_you_go(f64::INFINITY).is_err());
        assert!(CrowdModel::pay_as_you_go(0.0).is_ok());
    }
}
