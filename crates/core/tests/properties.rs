//! Property-based tests for the core JSP algorithms.

use jury_core::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

fn rates(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    vec(0.02..0.98f64, 1..=max_len)
}

fn rate_cost_pairs(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    vec((0.02..0.98f64, 0.0..1.0f64), 1..=max_len)
}

fn pool_of(rates: &[f64]) -> Vec<Juror> {
    rates
        .iter()
        .enumerate()
        .map(|(i, &e)| Juror::free(i as u32, ErrorRate::new(e).unwrap()))
        .collect()
}

fn paid_pool(pairs: &[(f64, f64)]) -> Vec<Juror> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(e, c))| Juror::new(i as u32, ErrorRate::new(e).unwrap(), c))
        .collect()
}

/// Reference JER by brute-force subset enumeration over all odd subsets.
fn brute_best_jer(rates: &[f64]) -> f64 {
    let n = rates.len();
    let mut best = f64::INFINITY;
    for mask in 1u32..(1 << n) {
        if mask.count_ones() % 2 == 0 {
            continue;
        }
        let eps: Vec<f64> = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| rates[i]).collect();
        best = best.min(JerEngine::DynamicProgramming.jer(&eps));
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn altralg_is_globally_optimal(rs in rates(11)) {
        let pool = pool_of(&rs);
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        let brute = brute_best_jer(&rs);
        prop_assert!((sel.jer - brute).abs() < 1e-10,
            "altr {} vs brute {}", sel.jer, brute);
    }

    #[test]
    fn altralg_strategies_agree(rs in rates(40)) {
        let pool = pool_of(&rs);
        let inc = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        let paper = AltrAlg::solve(&pool, &AltrConfig::paper_without_bound()).unwrap();
        let bounded = AltrAlg::solve(&pool, &AltrConfig::paper_with_bound()).unwrap();
        prop_assert!((inc.jer - paper.jer).abs() < 1e-9);
        prop_assert!((inc.jer - bounded.jer).abs() < 1e-9);
        // Member sets can only differ when near-tied JERs sit inside the
        // engines' mutual rounding band; above it they must agree.
        if inc.jer > 1e-9 {
            prop_assert_eq!(&inc.members, &paper.members);
            prop_assert_eq!(&inc.members, &bounded.members);
        }
    }

    #[test]
    fn altralg_selects_lowest_rate_prefix(rs in rates(30)) {
        // Lemma 3: the winning jury is always a prefix of the ε-sorted pool.
        let pool = pool_of(&rs);
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        let mut sorted = rs.clone();
        sorted.sort_by(f64::total_cmp);
        let mut chosen: Vec<f64> = sel.members.iter().map(|&i| rs[i]).collect();
        chosen.sort_by(f64::total_cmp);
        for (c, s) in chosen.iter().zip(&sorted) {
            prop_assert!((c - s).abs() < 1e-15);
        }
    }

    #[test]
    fn jer_monotone_in_individual_rate(
        rs in rates(15),
        idx in any::<prop::sample::Index>(),
        bump in 0.001..0.3f64,
    ) {
        // Lemma 3: worsening one juror's ε never lowers JER (odd juries).
        let mut rs = rs;
        if rs.len().is_multiple_of(2) { rs.pop(); }
        prop_assume!(!rs.is_empty());
        let i = idx.index(rs.len());
        let base = JerEngine::DynamicProgramming.jer(&rs);
        let old = rs[i];
        rs[i] = (old + bump).min(0.995);
        let worse = JerEngine::DynamicProgramming.jer(&rs);
        prop_assert!(worse + 1e-12 >= base, "{} -> {}: {} < {}", old, rs[i], worse, base);
    }

    #[test]
    fn payalg_respects_budget_and_parity(pairs in rate_cost_pairs(25), budget in 0.0..3.0f64) {
        let pool = paid_pool(&pairs);
        match PayAlg::solve(&pool, budget, &PayConfig::default()) {
            Ok(sel) => {
                prop_assert!(sel.total_cost <= budget + 1e-9);
                prop_assert_eq!(sel.size() % 2, 1);
                let recomputed: f64 = sel.members.iter().map(|&i| pool[i].cost).sum();
                prop_assert!((sel.total_cost - recomputed).abs() < 1e-9);
                // Reported JER matches an independent engine evaluation.
                let eps: Vec<f64> = sel.members.iter().map(|&i| pool[i].epsilon()).collect();
                prop_assert!((sel.jer - JerEngine::DynamicProgramming.jer(&eps)).abs() < 1e-9);
            }
            Err(JuryError::NoFeasibleJury { .. }) => {
                prop_assert!(pool.iter().all(|j| j.cost > budget));
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    #[test]
    fn exact_dominates_greedy(pairs in rate_cost_pairs(10), budget in 0.05..2.0f64) {
        let pool = paid_pool(&pairs);
        let greedy = PayAlg::solve(&pool, budget, &PayConfig::default());
        let exact = exact_paym(&pool, budget, &ExactConfig::default());
        match (greedy, exact) {
            (Ok(g), Ok(e)) => {
                prop_assert!(e.jer <= g.jer + 1e-10, "exact {} > greedy {}", e.jer, g.jer);
                prop_assert!(e.total_cost <= budget + 1e-9);
            }
            (Err(JuryError::NoFeasibleJury{..}), Err(JuryError::NoFeasibleJury{..})) => {}
            (g, e) => prop_assert!(false, "inconsistent feasibility: {g:?} vs {e:?}"),
        }
    }

    #[test]
    fn parallel_exact_equals_sequential(pairs in rate_cost_pairs(9), budget in 0.05..2.0f64) {
        let pool = paid_pool(&pairs);
        let seq = exact_paym(&pool, budget, &ExactConfig::default());
        let par = exact_paym_parallel(&pool, budget, &ExactConfig { threads: 3, ..Default::default() });
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                prop_assert_eq!(s.members, p.members);
                prop_assert!((s.jer - p.jer).abs() < 1e-12);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (s, p) => prop_assert!(false, "{s:?} vs {p:?}"),
        }
    }

    #[test]
    fn selection_jer_is_engine_consistent(rs in rates(30)) {
        let pool = pool_of(&rs);
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        let eps: Vec<f64> = sel.members.iter().map(|&i| rs[i]).collect();
        for engine in [JerEngine::DynamicProgramming, JerEngine::TailDp, JerEngine::Convolution] {
            prop_assert!((engine.jer(&eps) - sel.jer).abs() < 1e-9);
        }
    }

    #[test]
    fn profile_minimum_equals_solution(rs in rates(25)) {
        let pool = pool_of(&rs);
        let profile = AltrAlg::jer_profile(&pool);
        let best = profile.iter().cloned().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).unwrap();
        prop_assert!((best.1 - sel.jer).abs() < 1e-10);
    }

    #[test]
    fn majority_vote_matches_count(bits in vec(any::<bool>(), 1..20)) {
        let mut bits = bits;
        if bits.len() % 2 == 0 { bits.pop(); }
        prop_assume!(!bits.is_empty());
        let v = Voting::new(bits.clone()).unwrap();
        let yes = bits.iter().filter(|&&b| b).count();
        let expected = if yes * 2 > bits.len() { Decision::Yes } else { Decision::No };
        prop_assert_eq!(majority_vote(&v), expected);
    }

    // A recorded staircase — including the +∞ top window and refusal
    // (`null` selection) steps — must survive wire encode → decode →
    // encode byte-identically, and decode lax against unknown fields
    // (the snapshot persistence path depends on both).
    #[test]
    fn staircase_json_round_trips_and_decodes_lax(
        pairs in rate_cost_pairs(24),
        budgets in vec(0.0..6.0f64, 1..=12),
    ) {
        use serde::json;
        let pool = paid_pool(&pairs);
        let mut order = Vec::new();
        PayAlg::greedy_order_into(&pool, &mut order);
        let mut staircase = Staircase::new();
        let mut scratch = SolverScratch::new();
        for &budget in &budgets {
            let alg = PayAlg::new(budget, PayConfig::default());
            let _ = alg.solve_staircase(&pool, &order, &mut staircase, &mut scratch);
        }
        prop_assume!(!staircase.is_empty());
        let text = json::to_string(&staircase);
        let back: Staircase = json::from_str(&text).unwrap();
        prop_assert_eq!(json::to_string(&back), text.clone());
        let lax = format!("{{\"future_field\": [1, 2], {}", &text[1..]);
        let back: Staircase = json::from_str(&lax).unwrap();
        prop_assert_eq!(json::to_string(&back), text);
    }
}
