//! Golden-value regression tests for JER computation.
//!
//! These pin exact decimal values computed independently (by exhaustive
//! enumeration in an external script) for a battery of juries, so any
//! numerical drift in the engines — a changed summation order, an FFT
//! tweak, a new clamp — trips a test rather than silently skewing the
//! reproduced figures.

use jury_core::jer::JerEngine;

const ENGINES: [JerEngine; 4] =
    [JerEngine::DynamicProgramming, JerEngine::TailDp, JerEngine::Convolution, JerEngine::Auto];

fn assert_jer(eps: &[f64], expected: f64, tol: f64) {
    for engine in ENGINES {
        let got = engine.jer(eps);
        assert!((got - expected).abs() <= tol, "{engine:?} on {eps:?}: {got} vs {expected}");
    }
    if eps.len() <= 20 {
        let naive = JerEngine::Naive.jer(eps);
        assert!((naive - expected).abs() <= tol, "naive: {naive} vs {expected}");
    }
}

#[test]
fn paper_examples() {
    assert_jer(&[0.2, 0.3, 0.3], 0.174, 1e-12);
    assert_jer(&[0.1, 0.2, 0.2], 0.072, 1e-12);
    assert_jer(&[0.1, 0.2, 0.2, 0.3, 0.3], 0.07036, 1e-12);
    assert_jer(&[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4], 0.085248, 1e-12);
    assert_jer(&[0.1, 0.2, 0.2, 0.4, 0.4], 0.10384, 1e-12);
}

#[test]
fn homogeneous_binomial_tails() {
    // Binomial(n, p) majority tails, computed in closed form.
    // n=3, p=0.5: C(3,2)/8 + C(3,3)/8 = 0.5
    assert_jer(&[0.5; 3], 0.5, 1e-12);
    // n=5, p=0.5: (10+5+1)/32 = 0.5
    assert_jer(&[0.5; 5], 0.5, 1e-12);
    // n=3, p=0.1: 3·0.01·0.9 + 0.001 = 0.028
    assert_jer(&[0.1; 3], 0.028, 1e-12);
    // n=5, p=0.2: Σ_{k≥3} C(5,k)·0.2^k·0.8^{5-k} = 0.05792
    assert_jer(&[0.2; 5], 0.05792, 1e-12);
    // n=7, p=0.3: Σ_{k≥4} C(7,k)·0.3^k·0.7^{7-k} = 0.126036
    assert_jer(&[0.3; 7], 0.126_036, 1e-12);
    // n=9, p=0.4: Σ_{k≥5} C(9,k)·0.4^k·0.6^{9-k} = 0.26656768
    assert_jer(&[0.4; 9], 0.266_567_68, 1e-12);
}

#[test]
fn inverted_condorcet_symmetry() {
    // Pr(majority wrong | p) = 1 − Pr(majority wrong | 1−p) for odd n.
    for n in [3usize, 5, 7, 11] {
        for p in [0.1, 0.25, 0.4] {
            let low = JerEngine::Auto.jer(&vec![p; n]);
            let high = JerEngine::Auto.jer(&vec![1.0 - p; n]);
            assert!((low + high - 1.0).abs() < 1e-12, "n={n} p={p}");
        }
    }
}

#[test]
fn single_juror_is_identity() {
    for e in [0.001, 0.123456789, 0.5, 0.987654321] {
        assert_jer(&[e], e, 1e-15);
    }
}

#[test]
fn mixed_pool_golden_values() {
    // Pr(C ≥ 2) expanded term by term over the four minority patterns
    // (each pair wrong, plus all three wrong).
    let eps = [0.05, 0.15, 0.25];
    let expected =
        0.05 * 0.15 * 0.75 + 0.05 * 0.85 * 0.25 + 0.95 * 0.15 * 0.25 + 0.05 * 0.15 * 0.25;
    assert_jer(&eps, expected, 1e-12);
}

#[test]
fn large_jury_engines_agree_to_high_precision() {
    // 999 jurors spanning the whole unit interval: the DP is the
    // reference; CBA (FFT) must agree to 1e-9 despite ~10 merge levels.
    let eps: Vec<f64> = (0..999).map(|i| 0.01 + 0.98 * (i as f64 / 998.0)).collect();
    let reference = JerEngine::DynamicProgramming.jer(&eps);
    for engine in [JerEngine::TailDp, JerEngine::Convolution] {
        let got = engine.jer(&eps);
        assert!((got - reference).abs() < 1e-9, "{engine:?}: {got} vs {reference}");
    }
    // The pool is symmetric around 0.5 (ε_i + ε_{n-1-i} = 1), so C and
    // n−C are equidistributed and the majority tail is exactly 1/2.
    assert!(
        (reference - 0.5).abs() < 1e-9,
        "symmetric pool must sit at exactly 0.5, got {reference}"
    );
}

#[test]
fn extreme_rates_remain_stable() {
    // Near-degenerate rates probe clamping and cancellation paths.
    let eps = [1e-9, 1e-9, 1.0 - 1e-9];
    // Majority (2 of 3) wrong requires the two good jurors failing or one
    // good + the bad one: ≈ Pr(bad wrong)·(Pr(g1)+Pr(g2)) + ... ≈ 2e-9.
    let jer = JerEngine::Auto.jer(&eps);
    assert!(jer > 0.0 && jer < 1e-8, "{jer}");

    let all_bad = [1.0 - 1e-9; 3];
    let j = JerEngine::Auto.jer(&all_bad);
    assert!(j > 1.0 - 1e-8);
}

#[test]
fn general_threshold_tails_match_closed_forms() {
    // Pr(C >= 1) = 1 − Π(1−ε): easy closed form across engines.
    let eps = [0.11, 0.37, 0.52, 0.08, 0.29];
    let expected = 1.0 - eps.iter().map(|e| 1.0 - e).product::<f64>();
    for engine in ENGINES {
        assert!((engine.tail(&eps, 1) - expected).abs() < 1e-12);
    }
    // Pr(C >= n) = Π ε.
    let all: f64 = eps.iter().product();
    for engine in ENGINES {
        assert!((engine.tail(&eps, eps.len()) - all).abs() < 1e-12);
    }
}
