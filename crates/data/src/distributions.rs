//! Normal sampling with domain truncation.
//!
//! The allowed dependency set contains `rand` but not `rand_distr`, so
//! the Gaussian comes from a hand-rolled Box–Muller transform. Samples
//! are forced into a target interval by one of two policies:
//!
//! * [`Truncation::Resample`] — rejection sampling: redraw until the
//!   value lands inside (falls back to clamping after a bounded number of
//!   attempts so pathological parameters cannot hang the generator);
//! * [`Truncation::Clamp`] — clip to the interval endpoints, creating
//!   atoms at the boundaries.
//!
//! Rejection preserves the bell shape inside the domain and is the
//! default for all experiment workloads.

use rand::Rng;

/// Maximum redraw attempts before [`Truncation::Resample`] falls back to
/// clamping.
const MAX_REJECTION_ATTEMPTS: usize = 64;

/// How out-of-domain normal draws are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Truncation {
    /// Redraw until inside the domain (default).
    #[default]
    Resample,
    /// Clamp to the domain endpoints.
    Clamp,
}

/// A `N(mean, std_dev²)` sampler truncated to `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct NormalSampler {
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
    truncation: Truncation,
    /// Cached second Box–Muller variate.
    // Box–Muller yields pairs; we keep one for the next call.
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    /// Panics if `std_dev < 0`, bounds are not finite, or `lo >= hi`.
    pub fn new(mean: f64, std_dev: f64, lo: f64, hi: f64, truncation: Truncation) -> Self {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        assert!(mean.is_finite() && lo.is_finite() && hi.is_finite(), "parameters must be finite");
        assert!(lo < hi, "empty truncation interval [{lo}, {hi}]");
        Self { mean, std_dev, lo, hi, truncation, spare: None }
    }

    /// Standard normal variate via Box–Muller.
    fn standard<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // u1 in (0,1] to keep ln(u1) finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws one truncated sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        match self.truncation {
            Truncation::Clamp => {
                let x = self.mean + self.std_dev * self.standard(rng);
                x.clamp(self.lo, self.hi)
            }
            Truncation::Resample => {
                for _ in 0..MAX_REJECTION_ATTEMPTS {
                    let x = self.mean + self.std_dev * self.standard(rng);
                    if x >= self.lo && x <= self.hi {
                        return x;
                    }
                }
                // Pathological parameters (domain far in the tail):
                // degrade gracefully instead of spinning.
                (self.mean + self.std_dev * self.standard(rng)).clamp(self.lo, self.hi)
            }
        }
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn samples_respect_bounds() {
        for trunc in [Truncation::Resample, Truncation::Clamp] {
            let mut s = NormalSampler::new(0.5, 0.5, 0.0, 1.0, trunc);
            let mut r = rng(1);
            for _ in 0..5000 {
                let x = s.sample(&mut r);
                assert!((0.0..=1.0).contains(&x), "{trunc:?}: {x}");
            }
        }
    }

    #[test]
    fn mean_is_close_for_mild_truncation() {
        let mut s = NormalSampler::new(0.5, 0.1, 0.0, 1.0, Truncation::Resample);
        let mut r = rng(2);
        let xs = s.sample_n(50_000, &mut r);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn std_dev_is_close_for_mild_truncation() {
        let mut s = NormalSampler::new(0.5, 0.1, 0.0, 1.0, Truncation::Resample);
        let mut r = rng(3);
        let xs = s.sample_n(50_000, &mut r);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn clamping_creates_boundary_atoms_rejection_does_not() {
        // Mean outside the domain: clamping piles mass on the boundary.
        let mut clamp = NormalSampler::new(-0.5, 0.3, 0.0, 1.0, Truncation::Clamp);
        let mut resample = NormalSampler::new(-0.5, 0.3, 0.0, 1.0, Truncation::Resample);
        let mut r = rng(4);
        let clamped = clamp.sample_n(2000, &mut r);
        let resampled = resample.sample_n(2000, &mut r);
        let clamp_atoms = clamped.iter().filter(|&&x| x == 0.0).count();
        let resample_atoms = resampled.iter().filter(|&&x| x == 0.0).count();
        assert!(clamp_atoms > 1500, "clamp atoms {clamp_atoms}");
        // Rejection only clamps via the bounded-attempt fallback
        // ((1-p)^64 ≈ 4.6% here), so atoms are rare rather than dominant.
        assert!(
            resample_atoms < clamp_atoms / 10,
            "resample atoms {resample_atoms} vs clamp {clamp_atoms}"
        );
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let mut s = NormalSampler::new(0.3, 0.0, 0.0, 1.0, Truncation::Resample);
        let mut r = rng(5);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r), 0.3);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = NormalSampler::new(0.2, 0.1, 0.0, 1.0, Truncation::Resample);
        let mut b = NormalSampler::new(0.2, 0.1, 0.0, 1.0, Truncation::Resample);
        let xs = a.sample_n(100, &mut rng(6));
        let ys = b.sample_n(100, &mut rng(6));
        assert_eq!(xs, ys);
    }

    #[test]
    fn gaussian_shape_sanity() {
        // ~68% of unclipped mass within one σ.
        let mut s = NormalSampler::new(0.0, 1.0, -100.0, 100.0, Truncation::Resample);
        let mut r = rng(7);
        let xs = s.sample_n(50_000, &mut r);
        let within = xs.iter().filter(|x| x.abs() <= 1.0).count() as f64 / xs.len() as f64;
        assert!((within - 0.6827).abs() < 0.01, "within-1σ {within}");
    }

    #[test]
    #[should_panic(expected = "empty truncation interval")]
    fn rejects_inverted_bounds() {
        let _ = NormalSampler::new(0.0, 1.0, 1.0, 0.0, Truncation::Resample);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_std() {
        let _ = NormalSampler::new(0.0, -1.0, 0.0, 1.0, Truncation::Resample);
    }

    #[test]
    fn pathological_domain_falls_back_to_clamp() {
        // Domain 40σ away: rejection cannot hit it; fallback must clamp.
        let mut s = NormalSampler::new(0.0, 0.1, 4.0, 5.0, Truncation::Resample);
        let mut r = rng(8);
        let x = s.sample(&mut r);
        assert!((4.0..=5.0).contains(&x));
    }
}
