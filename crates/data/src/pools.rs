//! Synthetic juror-pool constructors.
//!
//! Pools are what §5.1's experiments consume: `N` candidate jurors whose
//! error rates (and, for PayM, payment requirements) are drawn from
//! truncated normals. Error rates live strictly inside `(0, 1)`
//! (Definition 4 — the truncation interval keeps a small margin);
//! requirements live in `[0, ∞)` truncated to `[0, cost_hi]`.

use crate::distributions::{NormalSampler, Truncation};
use jury_core::juror::{ErrorRate, Juror};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Margin keeping sampled error rates away from 0 and 1.
const RATE_MARGIN: f64 = 1e-6;

/// Upper truncation for sampled payment requirements. Requirements in the
/// paper's experiments are O(1); anything above this is a parameter
/// mistake, not a workload.
const COST_HI: f64 = 1e3;

/// Parameters of a synthetic pool.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of candidate jurors.
    pub size: usize,
    /// Mean of the error-rate normal.
    pub rate_mean: f64,
    /// Standard deviation of the error-rate normal (the paper's "var"
    /// legend parameter — see the crate docs).
    pub rate_std: f64,
    /// Mean of the requirement normal (PayM pools).
    pub cost_mean: f64,
    /// Standard deviation of the requirement normal.
    pub cost_std: f64,
    /// Truncation policy for out-of-domain draws.
    pub truncation: Truncation,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            size: 1000,
            rate_mean: 0.2,
            rate_std: 0.05,
            cost_mean: 0.4,
            cost_std: 0.2,
            truncation: Truncation::Resample,
            seed: 42,
        }
    }
}

/// AltrM pool: free jurors with sampled error rates.
pub fn rate_pool(config: &PoolConfig) -> Vec<Juror> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rates = NormalSampler::new(
        config.rate_mean,
        config.rate_std,
        RATE_MARGIN,
        1.0 - RATE_MARGIN,
        config.truncation,
    );
    (0..config.size)
        .map(|i| Juror::free(i as u32, ErrorRate::clamped(rates.sample(&mut rng))))
        .collect()
}

/// PayM pool: jurors with sampled error rates and payment requirements.
pub fn paid_pool(config: &PoolConfig) -> Vec<Juror> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rates = NormalSampler::new(
        config.rate_mean,
        config.rate_std,
        RATE_MARGIN,
        1.0 - RATE_MARGIN,
        config.truncation,
    );
    let mut costs =
        NormalSampler::new(config.cost_mean, config.cost_std, 0.0, COST_HI, config.truncation);
    (0..config.size)
        .map(|i| {
            Juror::new(i as u32, ErrorRate::clamped(rates.sample(&mut rng)), costs.sample(&mut rng))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_pool_has_requested_size_and_valid_rates() {
        let pool = rate_pool(&PoolConfig { size: 500, ..Default::default() });
        assert_eq!(pool.len(), 500);
        for j in &pool {
            let e = j.epsilon();
            assert!(e > 0.0 && e < 1.0);
            assert_eq!(j.cost, 0.0);
        }
    }

    #[test]
    fn rate_pool_sample_mean_tracks_config() {
        let pool = rate_pool(&PoolConfig {
            size: 20_000,
            rate_mean: 0.3,
            rate_std: 0.1,
            ..Default::default()
        });
        let mean: f64 = pool.iter().map(Juror::epsilon).sum::<f64>() / pool.len() as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn paid_pool_costs_are_non_negative() {
        let pool = paid_pool(&PoolConfig { size: 2000, ..Default::default() });
        for j in &pool {
            assert!(j.cost >= 0.0);
            assert!(j.cost <= 1e3);
        }
    }

    #[test]
    fn paid_pool_cost_mean_tracks_config() {
        let pool = paid_pool(&PoolConfig {
            size: 20_000,
            cost_mean: 0.5,
            cost_std: 0.1,
            ..Default::default()
        });
        let mean: f64 = pool.iter().map(|j| j.cost).sum::<f64>() / pool.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pools_are_deterministic_per_seed() {
        let cfg = PoolConfig { size: 100, seed: 9, ..Default::default() };
        assert_eq!(paid_pool(&cfg), paid_pool(&cfg));
        assert_ne!(paid_pool(&cfg), paid_pool(&PoolConfig { seed: 10, ..cfg }));
    }

    #[test]
    fn ids_are_positional() {
        let pool = rate_pool(&PoolConfig { size: 10, ..Default::default() });
        for (i, j) in pool.iter().enumerate() {
            assert_eq!(j.id as usize, i);
        }
    }

    #[test]
    fn extreme_mean_pools_stay_valid() {
        // Mean 0.9 with σ 0.3: heavy truncation at the top.
        let pool = rate_pool(&PoolConfig {
            size: 5000,
            rate_mean: 0.9,
            rate_std: 0.3,
            ..Default::default()
        });
        for j in &pool {
            assert!(j.epsilon() > 0.0 && j.epsilon() < 1.0);
        }
    }
}
