//! Synthetic dataset generators and named experiment workloads.
//!
//! §5.1 of the paper evaluates on synthetic juror pools whose individual
//! error rates and payment requirements "follow the normal distributions
//! with varying mean values and variance values". This crate provides:
//!
//! * [`distributions`] — Box–Muller normal sampling and truncation
//!   policies (the paper does not say how out-of-domain draws are
//!   handled; both rejection and clamping are implemented, rejection is
//!   the default — see DESIGN.md);
//! * [`pools`] — juror-pool constructors for AltrM (rates only) and PayM
//!   (rates + requirements);
//! * [`workloads`] — one named builder per synthetic experiment
//!   (Figures 3(a)–3(f)) with the paper's parameter grids, so bench
//!   binaries contain no magic numbers.
//!
//! A note on "variance": the paper's figure legends write `var(0.1)` …
//! `var(0.3)`, but a genuine variance of 0.3 (σ ≈ 0.55) around means as
//! low as 0.1 would truncate the majority of samples. We therefore read
//! the parameter as the **standard deviation**, which reproduces the
//! reported curve shapes; EXPERIMENTS.md discusses the choice.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distributions;
pub mod pools;
pub mod workloads;

pub use distributions::{NormalSampler, Truncation};
pub use pools::{paid_pool, rate_pool, PoolConfig};
