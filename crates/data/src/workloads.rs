//! Named workloads — one builder per synthetic experiment of §5.1.
//!
//! Each function returns the full parameter grid of a figure so the bench
//! binaries and EXPERIMENTS.md share a single source of truth. Parameter
//! values follow the paper text; where text and figure disagree the
//! figure's axis labels win (details in EXPERIMENTS.md).

use crate::distributions::Truncation;
use crate::pools::{paid_pool, rate_pool, PoolConfig};
use jury_core::juror::Juror;

/// Base RNG seed for all workloads; per-cell seeds are derived from it so
/// every grid cell is independent but reproducible.
pub const WORKLOAD_SEED: u64 = 0x5EED_2012;

/// One cell of the Figure 3(a) grid: a pool plus its generating
/// parameters.
#[derive(Debug, Clone)]
pub struct Fig3aCell {
    /// Mean of the error-rate distribution.
    pub mean: f64,
    /// Standard deviation ("var" in the paper's legend).
    pub std: f64,
    /// The generated pool (N = 1000).
    pub pool: Vec<Juror>,
}

/// Figure 3(a) — *jury size vs. individual error rate*: N = 1000 jurors,
/// error-rate means sweeping 0.05–0.95, spreads {0.1, 0.2, 0.3}.
pub fn fig3a_grid() -> Vec<Fig3aCell> {
    let mut cells = Vec::new();
    for (si, &std) in [0.1, 0.2, 0.3].iter().enumerate() {
        for mi in 0..19 {
            let mean = 0.05 + 0.05 * mi as f64;
            let pool = rate_pool(&PoolConfig {
                size: 1000,
                rate_mean: mean,
                rate_std: std,
                truncation: Truncation::Resample,
                seed: WORKLOAD_SEED ^ ((si as u64) << 32) ^ mi as u64,
                ..Default::default()
            });
            cells.push(Fig3aCell { mean, std, pool });
        }
    }
    cells
}

/// One cell of the Figure 3(b) efficiency sweep.
#[derive(Debug, Clone)]
pub struct Fig3bCell {
    /// Candidate-pool size N.
    pub n: usize,
    /// Error-rate spread.
    pub std: f64,
    /// The generated pool (mean 0.1).
    pub pool: Vec<Juror>,
}

/// Figure 3(b) — *efficiency of JSP on AltrM*: mean 0.1, spreads
/// {0.05, 0.1}, N from 2000 to 6000.
pub fn fig3b_grid() -> Vec<Fig3bCell> {
    let mut cells = Vec::new();
    for (si, &std) in [0.05, 0.1].iter().enumerate() {
        for (ni, n) in (2000..=6000).step_by(1000).enumerate() {
            let pool = rate_pool(&PoolConfig {
                size: n,
                rate_mean: 0.1,
                rate_std: std,
                truncation: Truncation::Resample,
                seed: WORKLOAD_SEED ^ 0xB000 ^ ((si as u64) << 32) ^ ni as u64,
                ..Default::default()
            });
            cells.push(Fig3bCell { n, std, pool });
        }
    }
    cells
}

/// One cell of the Figures 3(c)/3(d) budget study.
#[derive(Debug, Clone)]
pub struct Fig3cdCell {
    /// Mean of the requirement distribution (the paper's `m(·)` legend).
    pub cost_mean: f64,
    /// The generated PayM pool (N = 1000, ε ~ N(0.2, 0.05²)).
    pub pool: Vec<Juror>,
}

/// Budgets used by Figures 3(c)/3(d): 0.1 … 0.5.
pub fn fig3cd_budgets() -> Vec<f64> {
    (1..=5).map(|i| i as f64 * 0.1).collect()
}

/// Figures 3(c)/3(d) — *budget vs. total cost / JER*: N = 1000 jurors
/// with ε ~ N(0.2, 0.05²); requirements ~ N(m, 0.2²) for
/// m ∈ {0.3, 0.4, 0.5, 0.6}.
pub fn fig3cd_grid() -> Vec<Fig3cdCell> {
    [0.3, 0.4, 0.5, 0.6]
        .iter()
        .enumerate()
        .map(|(i, &cost_mean)| Fig3cdCell {
            cost_mean,
            pool: paid_pool(&PoolConfig {
                size: 1000,
                rate_mean: 0.2,
                rate_std: 0.05,
                cost_mean,
                cost_std: 0.2,
                truncation: Truncation::Resample,
                seed: WORKLOAD_SEED ^ 0xCD00 ^ i as u64,
            }),
        })
        .collect()
}

/// One cell of the Figures 3(e)/3(f) APPX-vs-OPT study.
#[derive(Debug, Clone)]
pub struct Fig3efCell {
    /// Error-rate spread of the pool.
    pub rate_std: f64,
    /// The generated small PayM pool (N = 22 — exact enumeration is the
    /// ground truth, so the pool must stay tiny).
    pub pool: Vec<Juror>,
}

/// Budgets used by Figures 3(e)/3(f): 0.5 … 1.5 in steps of 0.1 — eleven
/// points, matching the paper's "4 times out of 11".
pub fn fig3ef_budgets() -> Vec<f64> {
    (0..=10).map(|i| 0.5 + 0.1 * i as f64).collect()
}

/// Figures 3(e)/3(f) — *APPX vs OPT*: N = 22, ε ~ N(0.2, std²) for
/// std ∈ {0.05, 0.1}, requirements ~ N(0.05, 0.2²) **clamped** at 0.
///
/// Clamping matters here: with requirement mean 0.05 and σ = 0.2,
/// roughly 40% of draws are negative, and clamping turns them into
/// *free* jurors. That matches the paper's observed regime (the greedy
/// ties the optimum on several budgets, which only happens when good
/// free jurors exist); rejection sampling would instead produce a
/// half-normal with mean ≈ 0.17 and no ties. See EXPERIMENTS.md.
pub fn fig3ef_grid() -> Vec<Fig3efCell> {
    [0.05, 0.1]
        .iter()
        .enumerate()
        .map(|(i, &rate_std)| Fig3efCell {
            rate_std,
            pool: paid_pool(&PoolConfig {
                size: 22,
                rate_mean: 0.2,
                rate_std,
                cost_mean: 0.05,
                cost_std: 0.2,
                truncation: Truncation::Clamp,
                seed: WORKLOAD_SEED ^ 0xEF00 ^ i as u64,
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_grid_shape() {
        let grid = fig3a_grid();
        assert_eq!(grid.len(), 3 * 19);
        for cell in &grid {
            assert_eq!(cell.pool.len(), 1000);
            assert!((0.05 - 1e-9..=0.95 + 1e-9).contains(&cell.mean));
            assert!([0.1, 0.2, 0.3].contains(&cell.std));
        }
    }

    #[test]
    fn fig3a_pools_track_their_mean() {
        let grid = fig3a_grid();
        // Low-truncation cells should land near the nominal mean.
        let cell = grid
            .iter()
            .find(|c| (c.mean - 0.5).abs() < 1e-9 && (c.std - 0.1).abs() < 1e-9)
            .unwrap();
        let mean: f64 = cell.pool.iter().map(Juror::epsilon).sum::<f64>() / cell.pool.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "sample mean {mean}");
    }

    #[test]
    fn fig3b_grid_shape() {
        let grid = fig3b_grid();
        assert_eq!(grid.len(), 2 * 5);
        let sizes: Vec<usize> = grid.iter().map(|c| c.n).collect();
        assert!(sizes.contains(&2000) && sizes.contains(&6000));
        for cell in &grid {
            assert_eq!(cell.pool.len(), cell.n);
        }
    }

    #[test]
    fn fig3cd_grid_shape() {
        let grid = fig3cd_grid();
        assert_eq!(grid.len(), 4);
        for cell in &grid {
            assert_eq!(cell.pool.len(), 1000);
            assert!(cell.pool.iter().all(|j| j.cost >= 0.0));
        }
        assert_eq!(fig3cd_budgets(), vec![0.1, 0.2, 0.30000000000000004, 0.4, 0.5]);
    }

    #[test]
    fn fig3ef_grid_shape() {
        let grid = fig3ef_grid();
        assert_eq!(grid.len(), 2);
        for cell in &grid {
            assert_eq!(cell.pool.len(), 22);
        }
        let budgets = fig3ef_budgets();
        assert_eq!(budgets.len(), 11);
        assert!((budgets[0] - 0.5).abs() < 1e-12);
        assert!((budgets[10] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn workloads_are_reproducible() {
        let a = fig3ef_grid();
        let b = fig3ef_grid();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pool, y.pool);
        }
    }
}
