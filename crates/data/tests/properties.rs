//! Property-based tests for the synthetic data generators.

use jury_data::distributions::{NormalSampler, Truncation};
use jury_data::pools::{paid_pool, rate_pool, PoolConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn samples_always_inside_bounds(
        mean in -2.0..3.0f64,
        std in 0.0..1.0f64,
        seed in 0u64..1000,
    ) {
        for trunc in [Truncation::Resample, Truncation::Clamp] {
            let mut sampler = NormalSampler::new(mean, std, 0.0, 1.0, trunc);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..200 {
                let x = sampler.sample(&mut rng);
                prop_assert!((0.0..=1.0).contains(&x), "{trunc:?}: {x}");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic(seed in 0u64..1000) {
        let make = || {
            let mut s = NormalSampler::new(0.3, 0.2, 0.0, 1.0, Truncation::Resample);
            let mut rng = StdRng::seed_from_u64(seed);
            s.sample_n(50, &mut rng)
        };
        prop_assert_eq!(make(), make());
    }

    #[test]
    fn pools_are_valid_for_any_parameters(
        size in 1usize..200,
        rate_mean in 0.01..0.99f64,
        rate_std in 0.0..0.5f64,
        cost_mean in 0.0..2.0f64,
        cost_std in 0.0..1.0f64,
        seed in 0u64..500,
    ) {
        let config = PoolConfig {
            size,
            rate_mean,
            rate_std,
            cost_mean,
            cost_std,
            truncation: Truncation::Resample,
            seed,
        };
        let free = rate_pool(&config);
        prop_assert_eq!(free.len(), size);
        for (i, j) in free.iter().enumerate() {
            prop_assert_eq!(j.id as usize, i);
            prop_assert!(j.epsilon() > 0.0 && j.epsilon() < 1.0);
            prop_assert_eq!(j.cost, 0.0);
        }
        let paid = paid_pool(&config);
        prop_assert_eq!(paid.len(), size);
        for j in &paid {
            prop_assert!(j.epsilon() > 0.0 && j.epsilon() < 1.0);
            prop_assert!(j.cost >= 0.0 && j.cost.is_finite());
        }
    }

    #[test]
    fn zero_spread_pools_are_constant(
        rate_mean in 0.05..0.95f64,
        seed in 0u64..100,
    ) {
        let pool = rate_pool(&PoolConfig {
            size: 20,
            rate_mean,
            rate_std: 0.0,
            seed,
            ..Default::default()
        });
        for j in &pool {
            prop_assert!((j.epsilon() - rate_mean).abs() < 1e-12);
        }
    }
}
