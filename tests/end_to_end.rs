//! End-to-end integration: micro-blog corpus → parameter estimation →
//! jury selection → simulated voting.
//!
//! These tests span every crate in the workspace through the umbrella
//! crate's public API, the way a downstream application would use it.

use jury_selection::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus(seed: u64) -> MicroblogDataset {
    MicroblogDataset::generate(&SynthConfig {
        n_users: 300,
        n_tweets: 4000,
        seed,
        ..Default::default()
    })
}

fn estimate(dataset: &MicroblogDataset, ranking: RankingAlgorithm) -> EstimatedCandidates {
    estimate_candidates(
        &dataset.tweets,
        |name| dataset.users.iter().find(|u| u.name == name).map(|u| u.account_age_days),
        &PipelineConfig { ranking, top_k: Some(60), ..Default::default() },
    )
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = estimate(&corpus(5), RankingAlgorithm::Hits(Default::default()));
    let b = estimate(&corpus(5), RankingAlgorithm::Hits(Default::default()));
    assert_eq!(a.jurors, b.jurors);
    assert_eq!(a.usernames, b.usernames);

    let sel_a = AltrAlg::solve(&a.jurors, &AltrConfig::default()).unwrap();
    let sel_b = AltrAlg::solve(&b.jurors, &AltrConfig::default()).unwrap();
    assert_eq!(sel_a, sel_b);
}

#[test]
fn estimated_selection_outperforms_worst_candidates_in_simulation() {
    let dataset = corpus(6);
    let cands = estimate(&dataset, RankingAlgorithm::Hits(Default::default()));
    let selection = AltrAlg::solve(&cands.jurors, &AltrConfig::default()).unwrap();

    // Rebuild the selected jury with *latent* error rates.
    let latent_of =
        |idx: usize| dataset.true_error_rate_of(&cands.usernames[idx]).expect("candidate exists");
    let selected: Vec<Juror> = selection
        .members
        .iter()
        .enumerate()
        .map(|(k, &i)| Juror::free(k as u32, ErrorRate::clamped(latent_of(i))))
        .collect();
    let n = selected.len();
    let selected_jury = Jury::new(selected).unwrap();

    // Adversarial baseline: the *bottom* candidates by estimated score.
    let worst: Vec<Juror> = (cands.len() - n..cands.len())
        .map(|i| Juror::free(i as u32, ErrorRate::clamped(latent_of(i))))
        .collect();
    let worst_jury = Jury::new(worst).unwrap();

    let mut rng = StdRng::seed_from_u64(77);
    let good = estimate_jer(&selected_jury, 20_000, &mut rng);
    let bad = estimate_jer(&worst_jury, 20_000, &mut rng);
    assert!(
        good.point < bad.point,
        "selected jury {} should beat bottom-ranked jury {}",
        good.point,
        bad.point
    );
}

#[test]
fn paym_pipeline_respects_budget_and_dominance() {
    let dataset = corpus(8);
    let cands = estimate(&dataset, RankingAlgorithm::PageRank(Default::default()));
    let pool = &cands.jurors[..18.min(cands.len())];
    let total: f64 = pool.iter().map(|j| j.cost).sum();
    for fraction in [0.05, 0.2, 0.5] {
        let budget = total * fraction;
        let Ok(greedy) = PayAlg::solve(pool, budget, &PayConfig::default()) else {
            continue;
        };
        let exact = exact_paym_parallel(pool, budget, &ExactConfig::default()).unwrap();
        assert!(greedy.total_cost <= budget + 1e-9);
        assert!(exact.total_cost <= budget + 1e-9);
        assert!(exact.jer <= greedy.jer + 1e-9);
        // The metrics pipeline accepts the two selections.
        let pr = precision_recall(&greedy.members, &exact.members);
        assert!((0.0..=1.0).contains(&pr.precision));
        assert!((0.0..=1.0).contains(&pr.recall));
    }
}

#[test]
fn analytic_jer_matches_simulation_through_the_whole_stack() {
    let dataset = corpus(9);
    let cands = estimate(&dataset, RankingAlgorithm::Hits(Default::default()));
    // Use the estimated rates as the ground-truth behaviour: the
    // analytic JER of the selection must match the simulated frequency.
    let selection = AltrAlg::solve(&cands.jurors[..21], &AltrConfig::default()).unwrap();
    let jury =
        Jury::new(selection.jurors(&cands.jurors[..21]).into_iter().copied().collect()).unwrap();
    let mut rng = StdRng::seed_from_u64(123);
    let est = estimate_jer(&jury, 50_000, &mut rng);
    assert!(
        est.covers(selection.jer),
        "simulated {} ± {} vs analytic {}",
        est.point,
        est.half_width_95,
        selection.jer
    );
}

#[test]
fn altruism_and_paym_agree_when_money_is_free() {
    // With zero costs and an any-size budget, PayM degenerates to AltrM
    // (the paper's observation in §5.1.1) — on homogeneous pools where
    // the greedy pair admission matches the sorted prefix.
    let rates = vec![0.2; 15];
    let pool = jury_core::juror::pool_from_rates(&rates).unwrap();
    let altr = JurySelectionProblem::altruism(pool.clone()).solve().unwrap();
    let paym = JurySelectionProblem::pay_as_you_go(pool, 0.0).unwrap().solve().unwrap();
    assert!((altr.jer - paym.jer).abs() < 1e-12);
    assert_eq!(altr.size(), paym.size());
}
