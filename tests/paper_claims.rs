//! The paper's explicit numerical claims, verified as integration tests.
//!
//! Every number or qualitative statement the paper prints about its own
//! examples is checked here against this implementation.

use jury_selection::prelude::*;

/// Figure 1 / Table 2 error rates, A..G.
const RATES: [f64; 7] = [0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4];
/// Figure 1 payment requirements, A..G.
const COSTS: [f64; 7] = [0.2, 0.2, 0.3, 0.4, 0.65, 0.05, 0.05];

fn jer(eps: &[f64]) -> f64 {
    JerEngine::Auto.jer(eps)
}

#[test]
fn section1_worked_arithmetic() {
    // "the probability of getting a wrong answer from the entire crowd is
    //  0.2·0.3·0.3 + (1−0.2)·0.3·0.3 + 2·0.2·(1−0.3)·0.3 = 0.174"
    let by_hand: f64 = 0.2 * 0.3 * 0.3 + 0.8 * 0.3 * 0.3 + 2.0 * 0.2 * 0.7 * 0.3;
    assert!((by_hand - 0.174).abs() < 1e-12);
    assert!((jer(&[0.2, 0.3, 0.3]) - by_hand).abs() < 1e-12);
}

#[test]
fn section1_jury_beats_each_member() {
    // "This jury performs better than any individual of them does." —
    // the binding constraint is the best member, ε = 0.2.
    let j = jer(&[0.2, 0.3, 0.3]);
    assert!(j < 0.2);
}

#[test]
fn section1_better_individuals_better_jury() {
    // "with A, B, and C, the overall error-rate becomes 0.072"
    assert!((jer(&[0.1, 0.2, 0.2]) - 0.072).abs() < 1e-12);
    assert!(jer(&[0.1, 0.2, 0.2]) < jer(&[0.2, 0.3, 0.3]));
}

#[test]
fn section1_growth_helps_then_hurts() {
    // 5 jurors beat 3; 7 jurors are worse than 5.
    let three = jer(&RATES[..3]);
    let five = jer(&RATES[..5]);
    let seven = jer(&RATES[..7]);
    assert!(five < three);
    assert!(seven > five);
}

#[test]
fn section1_budget_dilemma() {
    // "the smaller and cheaper jury with error-rate 0.072 will perform
    //  better than the larger but more expensive one with error-rate
    //  0.104" — within budget $1, {A,B,C,D,E} is unaffordable because
    //  D+E cost 0.4+0.65 = 1.05 > 1 already.
    let dream_team_cost: f64 = COSTS[..5].iter().sum();
    assert!(dream_team_cost > 1.0);
    assert!((jer(&[0.1, 0.2, 0.2, 0.4, 0.4]) - 0.10384).abs() < 1e-12);
    assert!(jer(&[0.1, 0.2, 0.2]) < jer(&[0.1, 0.2, 0.2, 0.4, 0.4]));
}

#[test]
fn lemma1_recurrence_holds() {
    // Pr(C ≥ L | J_n) = ε_n·Pr(C ≥ L−1 | J_{n−1}) + (1−ε_n)·Pr(C ≥ L | J_{n−1})
    let eps = [0.15, 0.35, 0.25, 0.45, 0.05];
    let (head, last) = eps.split_at(eps.len() - 1);
    let e = last[0];
    for l in 1..=eps.len() {
        let full = JerEngine::DynamicProgramming.tail(&eps, l);
        let split = e * JerEngine::DynamicProgramming.tail(head, l - 1)
            + (1.0 - e) * JerEngine::DynamicProgramming.tail(head, l);
        assert!((full - split).abs() < 1e-12, "L = {l}");
    }
}

#[test]
fn lemma2_bound_is_valid_exactly_when_gamma_below_one() {
    use jury_selection::core::jer::{jer_gamma, jer_lower_bound};
    // γ > 1 (reliable prefix): bound unavailable.
    assert!(jer_gamma(&[0.1; 5]) > 1.0);
    assert!(jer_lower_bound(&[0.1; 5]).is_none());
    // γ < 1 (error-prone): bound available and sound.
    let eps = [0.9; 5];
    assert!(jer_gamma(&eps) < 1.0);
    let lb = jer_lower_bound(&eps).unwrap();
    assert!(lb <= jer(&eps) + 1e-12);
}

#[test]
fn lemma3_sorted_prefix_is_optimal_per_size() {
    // For each odd size n, no subset of that size beats the n smallest-ε
    // candidates.
    let rates = [0.37, 0.12, 0.45, 0.28, 0.51, 0.19, 0.33];
    let mut sorted = rates;
    sorted.sort_by(f64::total_cmp);
    for n in [1usize, 3, 5, 7] {
        let prefix_jer = jer(&sorted[..n]);
        // Enumerate all subsets of size n.
        for mask in 1u32..(1 << rates.len()) {
            if mask.count_ones() as usize != n {
                continue;
            }
            let eps: Vec<f64> =
                (0..rates.len()).filter(|&i| mask >> i & 1 == 1).map(|i| rates[i]).collect();
            assert!(
                prefix_jer <= jer(&eps) + 1e-12,
                "size {n}: prefix {prefix_jer} beaten by {eps:?}"
            );
        }
    }
}

#[test]
fn altralg_solves_the_motivating_instance() {
    let pool = jury_core::juror::pool_from_rates(&RATES).unwrap();
    let sel = JurySelectionProblem::altruism(pool).solve().unwrap();
    assert_eq!(sel.size(), 5);
    assert!((sel.jer - 0.07036).abs() < 1e-9);
}

#[test]
fn payalg_respects_the_motivating_budget() {
    let pairs: Vec<(f64, f64)> = RATES.iter().zip(&COSTS).map(|(&e, &c)| (e, c)).collect();
    let pool = jury_core::juror::pool_from_rates_and_costs(&pairs).unwrap();
    let sel = JurySelectionProblem::pay_as_you_go(pool.clone(), 1.0).unwrap().solve().unwrap();
    assert!(sel.total_cost <= 1.0 + 1e-12);
    // D and E cannot both be in (they alone exceed the budget).
    assert!(!(sel.members.contains(&3) && sel.members.contains(&4)));
    // And the greedy answer is within the exact optimum's reach:
    let exact = exact_paym(&pool, 1.0, &ExactConfig::default()).unwrap();
    assert!(exact.jer <= sel.jer + 1e-12);
}

#[test]
fn jer_definition_matches_poisson_binomial_tail() {
    // Definition 6 == upper tail of the Poisson-Binomial distribution.
    use jury_selection::numeric::PoiBin;
    let eps = [0.22, 0.47, 0.11, 0.68, 0.35];
    let d = PoiBin::from_error_rates(&eps);
    assert!((d.tail(3) - jer(&eps)).abs() < 1e-12);
    // Mean/variance are the Lemma-2 μ and σ².
    let mu: f64 = eps.iter().sum();
    let var: f64 = eps.iter().map(|e| e * (1.0 - e)).sum();
    assert!((d.mean() - mu).abs() < 1e-12);
    assert!((d.variance() - var).abs() < 1e-12);
}
