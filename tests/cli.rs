//! Integration tests for the `jury` command-line binary.
//!
//! Exercises the compiled binary end-to-end via `CARGO_BIN_EXE_jury`,
//! covering exit codes and stdout/stderr contracts a shell user relies
//! on.

use std::path::PathBuf;
use std::process::Command;

fn jury() -> Command {
    Command::new(env!("CARGO_BIN_EXE_jury"))
}

fn pool_file(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("jury-cli-integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write pool");
    path
}

const FIGURE1: &str = "\
A,0.1,0.2\nB,0.2,0.2\nC,0.2,0.3\nD,0.3,0.4\nE,0.3,0.65\nF,0.4,0.05\nG,0.4,0.05\n";

#[test]
fn solve_altruism_selects_the_paper_jury() {
    let path = pool_file("altr.csv", FIGURE1);
    let out = jury().args(["solve", "--input"]).arg(&path).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("jury size   : 5"), "{stdout}");
    assert!(stdout.contains("A, B, C, D, E"), "{stdout}");
    assert!(stdout.contains("7.036"), "JER 0.07036 expected: {stdout}");
}

#[test]
fn solve_with_budget_respects_it() {
    let path = pool_file("paym.csv", FIGURE1);
    let out = jury().args(["solve", "--budget", "1.0", "--input"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("PayALG"), "{stdout}");
    // The paper's dilemma: D and E cannot both be afforded.
    assert!(!(stdout.contains(" D,") && stdout.contains(" E")), "{stdout}");
}

#[test]
fn exact_budgeted_solve_matches_greedy_or_better() {
    let path = pool_file("exact.csv", FIGURE1);
    let greedy = jury().args(["solve", "--budget", "1.0", "--input"]).arg(&path).output().unwrap();
    let exact = jury()
        .args(["solve", "--budget", "1.0", "--exact", "--input"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(greedy.status.success() && exact.status.success());
    let parse_jer = |bytes: &[u8]| -> f64 {
        String::from_utf8_lossy(bytes)
            .lines()
            .find(|l| l.starts_with("JER"))
            .and_then(|l| l.split(':').nth(1))
            .map(|v| v.trim().parse().unwrap())
            .expect("JER line")
    };
    assert!(parse_jer(&exact.stdout) <= parse_jer(&greedy.stdout) + 1e-12);
}

#[test]
fn profile_emits_csv() {
    let path = pool_file("profile.csv", FIGURE1);
    let out = jury().args(["profile", "--input"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "size,jer");
    assert_eq!(lines.len(), 5);
    assert!(lines[1].starts_with("1,"));
    assert!(lines[4].starts_with("7,"));
}

#[test]
fn bad_usage_fails_with_help() {
    let out = jury().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn unreadable_input_fails_cleanly() {
    let out = jury().args(["solve", "--input", "/nonexistent/pool.csv"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn invalid_epsilon_reports_line() {
    let path = pool_file("bad.csv", "A,0.1\nB,1.7\n");
    let out = jury().args(["solve", "--input"]).arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2"), "{stderr}");
}
