//! # jury-selection
//!
//! A complete Rust reproduction of *"Whom to Ask? Jury Selection for
//! Decision Making Tasks on Micro-blog Services"* (Cao, She, Tong, Chen —
//! PVLDB 5(11), VLDB 2012).
//!
//! The problem: given candidate jurors on a micro-blog service, each with
//! an individual error rate (and possibly a payment requirement), select
//! the odd-sized jury minimising the **Jury Error Rate** — the probability
//! that a majority votes incorrectly — optionally under a budget.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] | JER engines, AltrALG, PayALG, exact solvers, the `Solver` trait, voting |
//! | [`service`] | `JuryService`: pool registry, per-pool caches, batched parallel solving |
//! | [`numeric`] | FFT, convolution, Poisson-Binomial, tail bounds, scratch workspaces |
//! | [`graph`] | directed graph, HITS, PageRank |
//! | [`microblog`] | tweets, `RT @` parsing, synthetic network generator |
//! | [`estimate`] | scores → error rates, ages → requirements, pipeline |
//! | [`sim`] | voting simulation, Monte-Carlo JER validation |
//! | [`data`] | truncated normals, experiment workloads |
//!
//! ## Architecture: solvers behind one trait, serving on top
//!
//! Every JSP algorithm — [`core::altr::AltrAlg`] (exact under AltrM),
//! [`core::paym::PayAlg`] (greedy under PayM) and
//! [`core::exact::ExactPaym`] (exponential ground truth) — implements
//! [`core::solver::Solver`]: a configured value whose
//! `solve(&mut self, pool, &mut SolverScratch)` reuses caller-owned
//! buffers. The numeric substrate mirrors this with workspace forms of
//! its hot primitives (`PoiBin::assign_error_rates_dp`,
//! `tail_probability_dp_with`, `convolve_into` + FFT plan caching), so a
//! warm solve allocates nothing beyond the returned
//! [`core::problem::Selection`].
//!
//! The [`service`] crate builds the serving seam on that interface:
//! register juror pools once, mutate them in place, and stream batches
//! of mixed AltrM/PayM tasks through
//! [`service::JuryService::solve_batch`], which fans work across scoped
//! worker threads with per-worker scratch and answers warm AltrM tasks
//! straight from the per-pool cache. Cold, warm and batched results are
//! bit-identical to direct solver calls; the `service_throughput` bench
//! records the speedup in `BENCH_service.json`.
//!
//! ## Quickstart
//!
//! ```
//! use jury_selection::prelude::*;
//!
//! // The paper's Figure-1 pool: seven users with known error rates.
//! let pool = jury_core::juror::pool_from_rates(
//!     &[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4],
//! ).unwrap();
//!
//! // Altruistic crowd: AltrALG finds the globally optimal jury.
//! let sel = JurySelectionProblem::altruism(pool).solve().unwrap();
//! assert_eq!(sel.size(), 5);                 // A,B,C,D,E
//! assert!((sel.jer - 0.07036).abs() < 1e-9); // Table 2's 0.0703
//! ```
//!
//! The [`framework`] module packages the paper's Figure-2 system —
//! estimation → selection → aggregation with EM recalibration — behind a
//! single [`framework::DecisionSystem`] type. See `examples/` for
//! end-to-end scenarios including rumor discernment on a synthetic
//! micro-blog network and budgeted polling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod framework;

pub use jury_core as core;
pub use jury_data as data;
pub use jury_estimate as estimate;
pub use jury_graph as graph;
pub use jury_microblog as microblog;
pub use jury_numeric as numeric;
pub use jury_service as service;
pub use jury_sim as sim;
pub use serde;

/// One-stop import for applications.
pub mod prelude {
    pub use jury_core::prelude::*;
    pub use jury_data::pools::{paid_pool, rate_pool, PoolConfig};
    pub use jury_estimate::{
        estimate_candidates, estimate_error_rates_em, EmConfig, EmEstimate, EstimatedCandidates,
        NormalizationParams, PipelineConfig, RankingAlgorithm, VoteMatrix,
    };
    pub use jury_microblog::{MicroblogDataset, SynthConfig, Tweet};
    pub use jury_service::{DecisionTask, JuryService, PoolId, ServiceConfig, ServiceError};
    pub use jury_sim::{estimate_jer, run_tasks, simulate_voting, TaskConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn prelude_exposes_the_core_workflow() {
        let pool = jury_core::juror::pool_from_rates(&[0.1, 0.3, 0.2]).unwrap();
        let sel = JurySelectionProblem::altruism(pool).solve().unwrap();
        assert_eq!(sel.size(), 3);
    }

    #[test]
    fn crates_are_reachable_under_aliases() {
        let d = crate::numeric::PoiBin::from_error_rates(&[0.5]);
        assert_eq!(d.n(), 1);
        let mut b = crate::graph::DiGraphBuilder::new();
        b.add_edge(0, 1);
        assert_eq!(b.build().edge_count(), 1);
    }
}
