//! `jury` — command-line jury selection.
//!
//! Reads a candidate pool from CSV and solves the Jury Selection Problem:
//!
//! ```console
//! $ jury solve --input candidates.csv              # AltrM (exact)
//! $ jury solve --input candidates.csv --budget 1.0 # PayM (greedy)
//! $ jury solve --input candidates.csv --budget 1.0 --exact
//! $ jury solve --input candidates.csv --size 5     # best fixed-size jury
//! $ jury profile --input candidates.csv            # size-vs-JER table
//! ```
//!
//! CSV format: one candidate per line, `id,epsilon[,cost]`, `#` comments
//! and an optional `id,epsilon,cost` header are ignored. `epsilon` must
//! lie strictly in (0,1); `cost` defaults to 0.

use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::exact::{exact_paym_parallel, ExactConfig};
use jury_core::juror::{ErrorRate, Juror};
use jury_core::paym::{PayAlg, PayConfig};
use jury_core::problem::Selection;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  jury solve   --input <pool.csv> [--budget <B>] [--exact] [--size <n>]
  jury profile --input <pool.csv>

input CSV: id,epsilon[,cost] per line ('#' comments and a header allowed)";

/// Parsed command line.
#[derive(Debug, PartialEq)]
struct Options {
    command: Command,
    input: String,
    budget: Option<f64>,
    exact: bool,
    size: Option<usize>,
}

#[derive(Debug, PartialEq, Clone, Copy)]
enum Command {
    Solve,
    Profile,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut iter = args.iter();
    let command = match iter.next().map(String::as_str) {
        Some("solve") => Command::Solve,
        Some("profile") => Command::Profile,
        Some(other) => return Err(format!("unknown command {other:?}")),
        None => return Err("missing command".into()),
    };
    let mut input = None;
    let mut budget = None;
    let mut exact = false;
    let mut size = None;
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--input" => {
                input = Some(iter.next().ok_or("--input needs a path")?.clone());
            }
            "--budget" => {
                let raw = iter.next().ok_or("--budget needs a value")?;
                let b: f64 = raw.parse().map_err(|_| format!("bad budget {raw:?}"))?;
                if !b.is_finite() || b < 0.0 {
                    return Err(format!("budget must be non-negative, got {b}"));
                }
                budget = Some(b);
            }
            "--exact" => exact = true,
            "--size" => {
                let raw = iter.next().ok_or("--size needs a value")?;
                size = Some(raw.parse().map_err(|_| format!("bad size {raw:?}"))?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let input = input.ok_or("--input is required")?;
    if size.is_some() && (budget.is_some() || exact) {
        return Err("--size cannot be combined with --budget/--exact".into());
    }
    Ok(Options { command, input, budget, exact, size })
}

/// One parsed candidate row.
fn parse_pool(csv: &str) -> Result<(Vec<Juror>, Vec<String>), String> {
    let mut pool = Vec::new();
    let mut names = Vec::new();
    for (lineno, raw) in csv.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 2 || fields.len() > 3 {
            return Err(format!("line {}: expected id,epsilon[,cost]", lineno + 1));
        }
        // Tolerate a header row.
        if lineno == 0 && fields[1].parse::<f64>().is_err() {
            continue;
        }
        let eps_raw: f64 = fields[1]
            .parse()
            .map_err(|_| format!("line {}: bad epsilon {:?}", lineno + 1, fields[1]))?;
        let eps = ErrorRate::new(eps_raw).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let cost: f64 = match fields.get(2) {
            Some(raw) => {
                raw.parse().map_err(|_| format!("line {}: bad cost {raw:?}", lineno + 1))?
            }
            None => 0.0,
        };
        let juror = Juror::try_new(pool.len() as u32, eps, cost)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        names.push(fields[0].to_string());
        pool.push(juror);
    }
    if pool.is_empty() {
        return Err("no candidates found in input".into());
    }
    Ok((pool, names))
}

fn render_selection(sel: &Selection, names: &[String], label: &str) -> String {
    let mut out = String::new();
    let chosen: Vec<&str> = sel.members.iter().map(|&i| names[i].as_str()).collect();
    out.push_str(&format!("solver      : {label}\n"));
    out.push_str(&format!("jury size   : {}\n", sel.size()));
    out.push_str(&format!("jury members: {}\n", chosen.join(", ")));
    out.push_str(&format!("JER         : {:.6e}\n", sel.jer));
    out.push_str(&format!("total cost  : {:.4}\n", sel.total_cost));
    out
}

fn run(args: &[String]) -> Result<String, String> {
    let options = parse_args(args)?;
    let csv = std::fs::read_to_string(&options.input)
        .map_err(|e| format!("cannot read {}: {e}", options.input))?;
    let (pool, names) = parse_pool(&csv)?;

    match options.command {
        Command::Profile => {
            let mut out = String::from("size,jer\n");
            for (n, jer) in AltrAlg::jer_profile(&pool) {
                out.push_str(&format!("{n},{jer:.6e}\n"));
            }
            Ok(out)
        }
        Command::Solve => {
            let (sel, label) = match (options.size, options.budget, options.exact) {
                (Some(n), _, _) => (
                    AltrAlg::solve_fixed_size(&pool, n).map_err(|e| e.to_string())?,
                    "AltrALG (fixed size)",
                ),
                (None, None, false) => (
                    AltrAlg::solve(&pool, &AltrConfig::default()).map_err(|e| e.to_string())?,
                    "AltrALG (exact)",
                ),
                (None, None, true) => (
                    exact_paym_parallel(&pool, f64::MAX, &ExactConfig::default())
                        .map_err(|e| e.to_string())?,
                    "exhaustive enumeration",
                ),
                (None, Some(b), false) => (
                    PayAlg::solve(&pool, b, &PayConfig::default()).map_err(|e| e.to_string())?,
                    "PayALG (greedy heuristic)",
                ),
                (None, Some(b), true) => (
                    exact_paym_parallel(&pool, b, &ExactConfig::default())
                        .map_err(|e| e.to_string())?,
                    "exhaustive enumeration (budgeted)",
                ),
            };
            Ok(render_selection(&sel, &names, label))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_solve_flags() {
        let opts =
            parse_args(&args(&["solve", "--input", "pool.csv", "--budget", "1.5", "--exact"]))
                .unwrap();
        assert_eq!(opts.command, Command::Solve);
        assert_eq!(opts.input, "pool.csv");
        assert_eq!(opts.budget, Some(1.5));
        assert!(opts.exact);
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["solve"])).is_err()); // no input
        assert!(parse_args(&args(&["solve", "--input"])).is_err());
        assert!(parse_args(&args(&["solve", "--input", "x", "--budget", "nan-ish"])).is_err());
        assert!(parse_args(&args(&["solve", "--input", "x", "--budget", "-1"])).is_err());
        assert!(parse_args(&args(&["solve", "--input", "x", "--size", "3", "--exact"])).is_err());
    }

    #[test]
    fn parses_pool_with_header_and_comments() {
        let csv = "id,epsilon,cost\n# the A-team\nalice,0.1,0.2\nbob,0.2\n";
        let (pool, names) = parse_pool(csv).unwrap();
        assert_eq!(names, vec!["alice", "bob"]);
        assert_eq!(pool[0].cost, 0.2);
        assert_eq!(pool[1].cost, 0.0);
        assert!((pool[0].epsilon() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn pool_parse_errors_carry_line_numbers() {
        assert!(parse_pool("alice,2.0").unwrap_err().contains("line 1"));
        assert!(parse_pool("alice,0.1\nbob,0.2,oops").unwrap_err().contains("line 2"));
        assert!(parse_pool("too,many,fields,here").unwrap_err().contains("line 1"));
        assert!(parse_pool("# only comments\n").is_err());
    }

    #[test]
    fn end_to_end_solve_from_temp_file() {
        let dir = std::env::temp_dir().join("jury-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.csv");
        std::fs::write(
            &path,
            "A,0.1,0.2\nB,0.2,0.2\nC,0.2,0.3\nD,0.3,0.4\nE,0.3,0.65\nF,0.4,0.05\nG,0.4,0.05\n",
        )
        .unwrap();
        let path_str = path.to_str().unwrap().to_string();

        let altr = run(&args(&["solve", "--input", &path_str])).unwrap();
        assert!(altr.contains("jury size   : 5"));
        assert!(altr.contains("A, B, C, D, E"));

        let paym = run(&args(&["solve", "--input", &path_str, "--budget", "1.0"])).unwrap();
        assert!(paym.contains("PayALG"));

        let profile = run(&args(&["profile", "--input", &path_str])).unwrap();
        assert!(profile.starts_with("size,jer"));
        assert_eq!(profile.lines().count(), 5); // header + sizes 1,3,5,7

        let fixed = run(&args(&["solve", "--input", &path_str, "--size", "3"])).unwrap();
        assert!(fixed.contains("jury size   : 3"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
