//! The paper's Figure-2 system, as a single high-level API.
//!
//! §4.3 sketches a two-part system: a parameter-estimation side that
//! turns raw micro-blog data into candidate jurors, and a selection side
//! that forms the best crowd and aggregates its Yes/No votes via
//! majority voting. [`DecisionSystem`] wires those parts together so an
//! application can go from *tweets* to *answered questions* without
//! touching the individual crates:
//!
//! ```
//! use jury_selection::framework::{DecisionSystem, SystemConfig};
//! use jury_selection::prelude::*;
//!
//! // Bootstrap from a (synthetic) micro-blog corpus.
//! let corpus = MicroblogDataset::generate(&SynthConfig {
//!     n_users: 120, n_tweets: 1500, seed: 5, ..Default::default()
//! });
//! let mut system = DecisionSystem::from_corpus(&corpus, &SystemConfig::default()).unwrap();
//!
//! // Ask a question; ballots come from wherever your application gets
//! // them (here: one vote per jury member, in member order).
//! let jury = system.current_jury().clone();
//! let ballots = vec![true; jury.size()];
//! let outcome = system.decide(&ballots).unwrap();
//! assert!(outcome.decision.as_bool());
//! ```

use jury_core::error::JuryError;
use jury_core::jury::Jury;
use jury_core::model::CrowdModel;
use jury_core::voting::{majority_vote, weighted_majority_vote, Decision, Voting};
use jury_estimate::em::{estimate_error_rates_em, EmConfig, VoteMatrix};
use jury_estimate::pipeline::{estimate_candidates, EstimatedCandidates, PipelineConfig};
use jury_microblog::synth::MicroblogDataset;
use jury_service::{DecisionTask, JuryService, PoolId, ServiceError};

/// How ballots are aggregated into a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregation {
    /// Plain majority voting (the paper's Definition 3).
    #[default]
    Majority,
    /// Log-odds weighted majority voting (extension; Bayes-optimal when
    /// the error rates are correct).
    Weighted,
}

/// Configuration of a [`DecisionSystem`].
#[derive(Debug, Clone, Default)]
pub struct SystemConfig {
    /// Parameter-estimation pipeline settings (ranking algorithm,
    /// normalisation, top-k cut).
    pub pipeline: PipelineConfig,
    /// Optional PayM budget; `None` runs the altruism model.
    pub budget: Option<f64>,
    /// Ballot aggregation scheme.
    pub aggregation: Aggregation,
}

/// Outcome of one decision task.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The aggregated answer.
    pub decision: Decision,
    /// Number of yes-ballots observed.
    pub yes_votes: usize,
    /// The jury's analytic JER at decision time (the probability this
    /// very outcome is wrong, under the current rate estimates).
    pub jer: f64,
}

/// End-to-end decision-making system (paper Figure 2): candidate
/// estimation → jury selection → vote aggregation, with optional
/// EM-based recalibration from the accumulated vote history.
///
/// Selection runs through an embedded [`JuryService`] pool, so repeated
/// reselection (after [`DecisionSystem::recalibrate`] updates the
/// members' rates) reuses the service's cached orders and scratch
/// buffers rather than re-running a standalone solver.
#[derive(Debug, Clone)]
pub struct DecisionSystem {
    candidates: EstimatedCandidates,
    config: SystemConfig,
    service: JuryService,
    pool: PoolId,
    jury_members: Vec<usize>,
    jury: Jury,
    jer: f64,
    /// Vote history over *jury member positions* (recalibration input).
    history: VoteMatrix,
    decisions: usize,
}

/// The embedded service's pool handle is service-internal, so registry
/// errors other than solver failures indicate a framework bug.
fn expect_solver(error: ServiceError) -> JuryError {
    match error {
        ServiceError::Solver(e) => e,
        bug => unreachable!("framework-internal pool misuse: {bug}"),
    }
}

impl DecisionSystem {
    /// Builds the system from a micro-blog corpus: runs the §4 pipeline
    /// and selects the initial jury.
    pub fn from_corpus(
        corpus: &MicroblogDataset,
        config: &SystemConfig,
    ) -> Result<Self, JuryError> {
        let candidates = estimate_candidates(
            &corpus.tweets,
            |name| corpus.users.iter().find(|u| u.name == name).map(|u| u.account_age_days),
            &config.pipeline,
        );
        Self::from_candidates(candidates, config)
    }

    /// Builds the system from an already-estimated candidate pool.
    pub fn from_candidates(
        candidates: EstimatedCandidates,
        config: &SystemConfig,
    ) -> Result<Self, JuryError> {
        let mut service = JuryService::new();
        let pool = service.create_pool(candidates.jurors.clone());
        let selection = service
            .solve(&DecisionTask { pool, model: Self::model_for(config) })
            .map_err(expect_solver)?;
        let members = selection.members.clone();
        let jury = Jury::new(selection.jurors(&candidates.jurors).into_iter().copied().collect())?;
        let history = VoteMatrix::new(jury.size());
        Ok(Self {
            candidates,
            config: config.clone(),
            service,
            pool,
            jury_members: members,
            jury,
            jer: selection.jer,
            history,
            decisions: 0,
        })
    }

    fn model_for(config: &SystemConfig) -> CrowdModel {
        match config.budget {
            None => CrowdModel::Altruism,
            Some(budget) => CrowdModel::PayAsYouGo { budget },
        }
    }

    /// The currently selected jury.
    pub fn current_jury(&self) -> &Jury {
        &self.jury
    }

    /// Usernames of the current jury, in member order.
    pub fn jury_usernames(&self) -> Vec<&str> {
        self.jury_members.iter().map(|&i| self.candidates.usernames[i].as_str()).collect()
    }

    /// The jury's analytic JER under the current rate estimates.
    pub fn jer(&self) -> f64 {
        self.jer
    }

    /// Decisions made so far.
    pub fn decisions_made(&self) -> usize {
        self.decisions
    }

    /// Aggregates one round of ballots (one per jury member, in member
    /// order) into a decision, recording the votes for recalibration.
    ///
    /// # Errors
    /// [`JuryError::VotingSizeMismatch`] when the ballot count differs
    /// from the jury size; jury invariants guarantee the count is odd.
    pub fn decide(&mut self, ballots: &[bool]) -> Result<Outcome, JuryError> {
        if ballots.len() != self.jury.size() {
            return Err(JuryError::VotingSizeMismatch {
                expected: self.jury.size(),
                actual: ballots.len(),
            });
        }
        let voting = Voting::new(ballots.to_vec())?;
        let decision = match self.config.aggregation {
            Aggregation::Majority => majority_vote(&voting),
            Aggregation::Weighted => weighted_majority_vote(&self.jury, &voting)?,
        };
        self.history.push_dense_task(ballots);
        self.decisions += 1;
        Ok(Outcome { decision, yes_votes: voting.yes_count(), jer: self.jer })
    }

    /// Records the revealed ground truth of a past decision as a gold
    /// task (e.g. a rumor later confirmed), anchoring future
    /// recalibration.
    pub fn record_ground_truth(&mut self, ballots: &[bool], truth: bool) {
        let votes: Vec<(usize, bool)> = ballots.iter().copied().enumerate().collect();
        self.history.push_gold_task(&votes, truth);
    }

    /// Recalibrates the jury members' error rates from the accumulated
    /// vote history (one-coin Dawid–Skene EM) and updates the jury's JER
    /// accordingly. Returns the new JER.
    ///
    /// # Errors
    /// [`JuryError::EmptyPool`] when no history has been recorded yet.
    pub fn recalibrate(&mut self) -> Result<f64, JuryError> {
        if self.history.n_tasks() == 0 {
            return Err(JuryError::EmptyPool);
        }
        let fit = estimate_error_rates_em(&self.history, &EmConfig::default());
        let members: Vec<jury_core::juror::Juror> = self
            .jury
            .members()
            .iter()
            .zip(&fit.error_rates)
            .map(|(j, &rate)| jury_core::juror::Juror { error_rate: rate, ..*j })
            .collect();
        self.jury = Jury::new(members)?;
        self.jer = self.jury.jer(jury_core::jer::JerEngine::Auto);
        Ok(self.jer)
    }

    /// Pushes the jury's current (possibly recalibrated) error rates back
    /// into the candidate pool and re-runs selection through the embedded
    /// service — jurors whose estimates drifted are voted off, better
    /// candidates voted in. The vote history is reset because ballot
    /// positions refer to jury membership, which may have changed.
    /// Returns the new JER.
    ///
    /// # Errors
    /// Propagates solver errors (e.g. the configured budget no longer
    /// affords any juror after a cost update).
    pub fn reselect(&mut self) -> Result<f64, JuryError> {
        for (&position, juror) in self.jury_members.iter().zip(self.jury.members()) {
            self.service.update_juror(self.pool, position, *juror).map_err(expect_solver)?;
        }
        let task = DecisionTask { pool: self.pool, model: Self::model_for(&self.config) };
        let selection = self.service.solve(&task).map_err(expect_solver)?;
        let pool = self.service.pool(self.pool).map_err(expect_solver)?;
        self.jury = Jury::new(selection.jurors(pool).into_iter().copied().collect())?;
        self.jury_members = selection.members;
        self.jer = selection.jer;
        self.history = VoteMatrix::new(self.jury.size());
        Ok(self.jer)
    }

    /// Read access to the embedded serving layer (pool cache + scratch
    /// reuse) for inspection — stats, pool contents. Mutation stays
    /// internal: the system's jury state holds positions into its
    /// service pool, which external edits would invalidate.
    pub fn service(&self) -> &JuryService {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_microblog::synth::SynthConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus() -> MicroblogDataset {
        MicroblogDataset::generate(&SynthConfig {
            n_users: 150,
            n_tweets: 2000,
            seed: 31,
            ..Default::default()
        })
    }

    fn system() -> DecisionSystem {
        DecisionSystem::from_corpus(
            &corpus(),
            &SystemConfig {
                pipeline: PipelineConfig { top_k: Some(40), ..Default::default() },
                ..Default::default()
            },
        )
        .expect("corpus yields candidates")
    }

    #[test]
    fn bootstraps_and_selects_a_jury() {
        let s = system();
        assert!(s.current_jury().size() % 2 == 1);
        assert!(s.jer() < 0.5);
        assert_eq!(s.jury_usernames().len(), s.current_jury().size());
        assert_eq!(s.decisions_made(), 0);
    }

    #[test]
    fn decide_majority() {
        let mut s = system();
        let n = s.current_jury().size();
        let mut ballots = vec![false; n];
        for b in ballots.iter_mut().take(n / 2 + 1) {
            *b = true;
        }
        let outcome = s.decide(&ballots).unwrap();
        assert_eq!(outcome.decision, Decision::Yes);
        assert_eq!(outcome.yes_votes, n / 2 + 1);
        assert_eq!(s.decisions_made(), 1);
    }

    #[test]
    fn decide_checks_ballot_count() {
        let mut s = system();
        assert!(matches!(s.decide(&[true]), Err(JuryError::VotingSizeMismatch { .. })));
    }

    #[test]
    fn budgeted_system_respects_budget() {
        let corpus = corpus();
        let s = DecisionSystem::from_corpus(
            &corpus,
            &SystemConfig {
                pipeline: PipelineConfig { top_k: Some(40), ..Default::default() },
                budget: Some(0.5),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(s.current_jury().total_cost() <= 0.5 + 1e-9);
    }

    #[test]
    fn weighted_aggregation_is_used() {
        let corpus = corpus();
        let mut s = DecisionSystem::from_corpus(
            &corpus,
            &SystemConfig {
                pipeline: PipelineConfig { top_k: Some(40), ..Default::default() },
                aggregation: Aggregation::Weighted,
                ..Default::default()
            },
        )
        .unwrap();
        // The top juror's estimated rate is near zero: log-odds weighting
        // lets them dominate. Their lone "yes" against all "no" should
        // carry iff their weight exceeds everyone else's combined.
        let jury = s.current_jury().clone();
        let mut ballots = vec![false; jury.size()];
        ballots[0] = true;
        let top_weight = jury.members()[0].error_rate.log_odds();
        let rest: f64 = jury.members()[1..].iter().map(|j| j.error_rate.log_odds()).sum();
        let outcome = s.decide(&ballots).unwrap();
        assert_eq!(outcome.decision.as_bool(), top_weight > rest);
    }

    #[test]
    fn recalibration_updates_jer_towards_observed_behaviour() {
        let mut s = system();
        let n = s.current_jury().size();
        // Feed 300 tasks where one member dissents ~45% of the time and
        // everyone else agrees: EM should assign the dissenter a high
        // rate and the rest low ones.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..300 {
            let mut ballots = vec![true; n];
            if rng.gen_bool(0.45) {
                ballots[n - 1] = false;
            }
            let _ = s.decide(&ballots).unwrap();
        }
        let before = s.jer();
        let after = s.recalibrate().unwrap();
        assert!(after.is_finite());
        assert!((s.jer() - after).abs() < 1e-15);
        // The dissenter's recalibrated rate reflects their behaviour.
        let rates: Vec<f64> = s.current_jury().members().iter().map(|j| j.epsilon()).collect();
        let dissenter = rates[n - 1];
        let consensus_max = rates[..n - 1].iter().cloned().fold(0.0f64, f64::max);
        assert!(
            dissenter > consensus_max,
            "dissenter {dissenter} vs consensus max {consensus_max}"
        );
        // JER changed (estimation now reflects votes, not graph scores).
        assert!((after - before).abs() > 0.0);
    }

    #[test]
    fn reselect_after_recalibration_tracks_updated_pool() {
        let mut s = system();
        let n = s.current_jury().size();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let mut ballots = vec![true; n];
            if rng.gen_bool(0.45) {
                ballots[n - 1] = false;
            }
            let _ = s.decide(&ballots).unwrap();
        }
        s.recalibrate().unwrap();
        let jer = s.reselect().unwrap();
        assert!(jer.is_finite());
        assert!(s.current_jury().size() % 2 == 1);
        // The reselected jury must equal a direct solve on the updated
        // pool (the service guarantees equivalence).
        let pool_id = s.pool;
        let pool = s.service().pool(pool_id).unwrap().to_vec();
        let direct =
            jury_core::altr::AltrAlg::solve(&pool, &jury_core::altr::AltrConfig::default())
                .unwrap();
        assert_eq!(s.jury_members, direct.members);
        assert!((s.jer() - direct.jer).abs() < 1e-15);
        // History was reset to the new jury's size.
        assert_eq!(s.decisions_made(), 200);
        assert_eq!(s.history.n_tasks(), 0);
    }

    #[test]
    fn recalibrate_without_history_errors() {
        let mut s = system();
        assert_eq!(s.recalibrate(), Err(JuryError::EmptyPool));
    }

    #[test]
    fn ground_truth_tasks_anchor_history() {
        let mut s = system();
        let n = s.current_jury().size();
        s.record_ground_truth(&vec![true; n], true);
        s.record_ground_truth(&vec![false; n], false);
        for _ in 0..10 {
            let _ = s.decide(&vec![true; n]).unwrap();
        }
        let jer = s.recalibrate().unwrap();
        assert!(jer.is_finite());
    }
}
